//! Sharding and replication (§IV-D2).
//!
//! "Future scalability can leverage the sharding and replication
//! capabilities built in to MongoDB. This will allow us to maintain
//! performance at scale as the Materials Project data grows, as well as
//! isolate the various roles of the database to separate servers." The
//! paper leaves this as future work; we implement it: a hash-sharded
//! cluster with a mongos-style router (targeted vs scatter-gather
//! reads), and replica sets with oplog-based secondaries, lag, and
//! failover.

use crate::collection::UpdateResult;
use crate::database::Database;
use crate::error::{Result, StoreError};
use crate::persist::JournalOp;
use crate::query::Filter;
use crate::value::{get_path, Docs};
use mp_exec::WorkPool;
use mp_sync::{LockRank, OrderedMutex};
use serde_json::{json, Value};

/// Stable hash of a shard-key value.
fn key_hash(v: &Value) -> u64 {
    let s = v.to_string();
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A hash-sharded cluster of databases with a router in front.
pub struct ShardedCluster {
    shards: Vec<Database>,
    /// Dotted path of the shard key.
    shard_key: String,
    /// Router statistics: (targeted reads, scatter-gather reads).
    stats: OrderedMutex<(u64, u64)>,
}

impl ShardedCluster {
    /// Create a cluster of `n` shards keyed on `shard_key`.
    pub fn new(n: usize, shard_key: impl Into<String>) -> Self {
        Self::from_shards((0..n.max(1)).map(|_| Database::new()).collect(), shard_key)
    }

    /// Assemble a cluster from existing shard databases — how a cluster
    /// grows: reuse the old shards, append fresh empty ones, then call
    /// [`rebalance`](Self::rebalance) to migrate misplaced documents.
    pub fn from_shards(shards: Vec<Database>, shard_key: impl Into<String>) -> Self {
        assert!(!shards.is_empty(), "a cluster needs at least one shard");
        ShardedCluster {
            shards,
            shard_key: shard_key.into(),
            stats: OrderedMutex::new(LockRank::ShardStats, (0, 0)),
        }
    }

    /// Move every document whose shard key no longer hashes to its
    /// current shard (the cluster shape changed) onto the right one.
    /// Returns how many documents moved. Each document is inserted at
    /// its destination *before* being deleted at the source, so a
    /// concurrent scatter-gather read sees it once or (transiently)
    /// twice, never zero times.
    pub fn rebalance(&self, collection: &str) -> Result<usize> {
        // One migration job per source shard, scattered over the pool;
        // destinations are distinct Database instances, so concurrent
        // inserts from different sources are safe, and the per-document
        // insert-before-delete ordering is preserved inside each job.
        let sources: Vec<usize> = (0..self.shards.len()).collect();
        let moved_per_shard = WorkPool::global().scatter(sources, |i| -> Result<usize> {
            let coll = self.shards[i].collection(collection);
            let mut moved = 0;
            for doc in coll.dump() {
                let Some(key) = get_path(&doc, &self.shard_key) else {
                    continue;
                };
                let target = (key_hash(key) % self.shards.len() as u64) as usize;
                if target == i {
                    continue;
                }
                let id = doc.get("_id").cloned().unwrap_or(Value::Null);
                // Migration is a write path: the destination takes its own
                // copy of the document.
                self.shards[target]
                    .collection(collection)
                    .insert_one((*doc).clone())?;
                coll.delete_one(&json!({ "_id": id }))?;
                moved += 1;
            }
            Ok(moved)
        });
        moved_per_shard
            .into_iter()
            .try_fold(0usize, |acc, r| r.map(|m| acc + m))
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Direct access to one shard (for tests/rebalancing tooling).
    pub fn shard(&self, i: usize) -> &Database {
        &self.shards[i]
    }

    /// (targeted, scatter-gather) read counts since creation.
    pub fn routing_stats(&self) -> (u64, u64) {
        *self.stats.lock()
    }

    fn shard_for(&self, key_value: &Value) -> &Database {
        let idx = (key_hash(key_value) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Insert a document; it must carry the shard key.
    pub fn insert_one(&self, collection: &str, doc: Value) -> Result<Value> {
        let key = get_path(&doc, &self.shard_key).ok_or_else(|| {
            StoreError::InvalidDocument(format!("document missing shard key '{}'", self.shard_key))
        })?;
        self.shard_for(&key.clone())
            .collection(collection)
            .insert_one(doc)
    }

    /// Find: targeted to one shard when the filter pins the shard key
    /// with an equality, otherwise scatter-gather across all shards.
    pub fn find(&self, collection: &str, filter: &Value) -> Result<Docs> {
        let parsed = Filter::parse(filter)?;
        if let Some(key_value) = parsed.equality_on(&self.shard_key) {
            self.stats.lock().0 += 1;
            return self
                .shard_for(key_value)
                .collection(collection)
                .find(filter);
        }
        self.stats.lock().1 += 1;
        // Scatter-gather: the filter is parsed and compiled once here,
        // then the crossover model prices the union scan (summed
        // per-shard plan estimates, no candidates materialized yet).
        //
        // Parallel arm: each shard's planner picks its own candidate
        // snapshot (index-assisted where possible, lock held only for
        // the Arc clones) and the segments are match-evaluated as ONE
        // morsel scatter spanning shard boundaries — every pool slot
        // helps with every shard, and nothing is flattened into an
        // intermediate union vector first.
        //
        // Sequential arm (small scans, or hosts where fan-out can't
        // pay): match under each shard's read lock in turn, cloning one
        // Arc per *match* instead of materializing every candidate —
        // this is what keeps a sequential cross-shard scan cheaper than
        // a collscan of the same documents, not slower.
        //
        // Both arms produce shard-major order, identical to the old
        // shard-by-shard concatenation.
        let cf = parsed.compile();
        let pool = WorkPool::global();
        let estimate: usize = self
            .shards
            .iter()
            .map(|s| s.collection(collection).estimate_cost(&cf))
            .sum();
        if crate::collection::SCAN_CROSSOVER
            .decide(pool, estimate)
            .parallel
        {
            let segments: Vec<Docs> = self
                .shards
                .iter()
                .map(|s| s.collection(collection).snapshot(&cf))
                .collect();
            Ok(crate::collection::filter_matches_segmented(
                pool, &segments, &cf,
            ))
        } else {
            let mut out = Docs::new();
            for s in &self.shards {
                s.collection(collection).filter_into(&cf, &mut out);
            }
            Ok(out)
        }
    }

    /// Count across the cluster (targeted when possible).
    pub fn count(&self, collection: &str, filter: &Value) -> Result<usize> {
        let parsed = Filter::parse(filter)?;
        if let Some(key_value) = parsed.equality_on(&self.shard_key) {
            return self
                .shard_for(key_value)
                .collection(collection)
                .count(filter);
        }
        let cf = parsed.compile();
        // One morsel per shard: counting needs no gather order and each
        // shard's count is itself crossover-routed (it runs inline on
        // its claiming worker), so the router pays O(workers) dispatch
        // rather than one boxed job per shard.
        let shards: Vec<&Database> = self.shards.iter().collect();
        let counts = WorkPool::global().scatter_morsels(&shards, 1, |m| {
            m.iter()
                .map(|s| s.collection(collection).count_filter(&cf))
                .sum::<usize>()
        });
        Ok(counts.into_iter().sum())
    }

    /// Update across the cluster; returns the merged result.
    pub fn update_many(
        &self,
        collection: &str,
        filter: &Value,
        update: &Value,
    ) -> Result<UpdateResult> {
        let parsed = Filter::parse(filter)?;
        let mut merged = UpdateResult::default();
        if let Some(key_value) = parsed.equality_on(&self.shard_key) {
            return self
                .shard_for(key_value)
                .collection(collection)
                .update_many(filter, update);
        }
        let shards: Vec<&Database> = self.shards.iter().collect();
        let results = WorkPool::global().scatter(shards, |s| {
            s.collection(collection).update_many(filter, update)
        });
        for r in results {
            let r = r?;
            merged.matched += r.matched;
            merged.modified += r.modified;
        }
        Ok(merged)
    }

    /// Per-shard document counts for a collection — balance diagnostics.
    pub fn distribution(&self, collection: &str) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.collection(collection).len())
            .collect()
    }
}

/// How a replica-set read is routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadPreference {
    /// Always read the primary (strongly consistent).
    Primary,
    /// Round-robin the secondaries (scales reads; may be stale).
    Secondary,
}

/// Round-robin router bookkeeping for a [`ReplicaSet`].
#[derive(Default)]
struct RouterState {
    /// Next secondary to try (round-robin cursor).
    cursor: usize,
    /// Reads served by the primary.
    primary_reads: u64,
    /// Reads served by a secondary.
    secondary_reads: u64,
}

/// A primary + N secondaries kept in sync by an oplog.
pub struct ReplicaSet {
    primary: Database,
    secondaries: Vec<Database>,
    oplog: OrderedMutex<Vec<JournalOp>>,
    /// How many oplog entries each secondary has applied.
    applied: OrderedMutex<Vec<usize>>,
    /// Entries applied per `replicate()` call per secondary (lag model).
    pub batch: usize,
    router: OrderedMutex<RouterState>,
}

impl ReplicaSet {
    /// A set with `n_secondaries` secondaries applying up to `batch`
    /// oplog entries per replication round.
    pub fn new(n_secondaries: usize, batch: usize) -> Self {
        ReplicaSet {
            primary: Database::new(),
            secondaries: (0..n_secondaries).map(|_| Database::new()).collect(),
            oplog: OrderedMutex::new(LockRank::ReplOplog, Vec::new()),
            applied: OrderedMutex::new(LockRank::ReplApplied, vec![0; n_secondaries]),
            batch: batch.max(1),
            router: OrderedMutex::new(LockRank::ReplRouter, RouterState::default()),
        }
    }

    /// The primary (for inspection).
    pub fn primary(&self) -> &Database {
        &self.primary
    }

    /// Direct access to one secondary (for inspection in tests).
    pub fn secondary(&self, i: usize) -> &Database {
        &self.secondaries[i]
    }

    /// `(primary_reads, secondary_reads)` routed since creation.
    pub fn read_distribution(&self) -> (u64, u64) {
        let rt = self.router.lock();
        (rt.primary_reads, rt.secondary_reads)
    }

    /// Write through the primary, appending to the oplog.
    pub fn insert_one(&self, collection: &str, doc: Value) -> Result<Value> {
        let id = self
            .primary
            .collection(collection)
            .insert_one(doc.clone())?;
        // Store the post-insert doc (with assigned _id) in the oplog.
        let stored = self
            .primary
            .collection(collection)
            .get(&id)
            .expect("just inserted");
        self.oplog.lock().push(JournalOp::Insert {
            collection: collection.to_string(),
            doc: (*stored).clone(),
        });
        Ok(id)
    }

    /// Update through the primary, appending to the oplog.
    pub fn update_many(
        &self,
        collection: &str,
        filter: &Value,
        update: &Value,
    ) -> Result<UpdateResult> {
        let r = self
            .primary
            .collection(collection)
            .update_many(filter, update)?;
        self.oplog.lock().push(JournalOp::Update {
            collection: collection.to_string(),
            filter: filter.clone(),
            update: update.clone(),
            many: true,
        });
        Ok(r)
    }

    /// One replication round: each secondary applies up to `batch`
    /// pending oplog entries. Returns the max remaining lag (entries).
    // mp-lint: allow(E003) — oplog-ordered application is the replication
    // contract: the oplog/applied guards must span the whole round so no
    // concurrent round interleaves ops, and scatter workers never take
    // the replication locks.
    pub fn replicate(&self) -> Result<usize> {
        // mp-lint: allow(L003) — ReplOplog(300) -> ReplApplied(310) ->
        // Collection (via JournalOp::apply) is the sanctioned
        // replication chain.
        // mp-lint: allow(E002) — secondaries are replicas, not an origin
        // of new writes; the op being applied IS the journal record.
        let oplog = self.oplog.lock();
        let mut applied = self.applied.lock();
        let mut max_lag = 0;
        for (i, sec) in self.secondaries.iter().enumerate() {
            let from = applied[i];
            let to = (from + self.batch).min(oplog.len());
            for op in &oplog[from..to] {
                op.apply(sec)?;
            }
            applied[i] = to;
            max_lag = max_lag.max(oplog.len() - to);
        }
        Ok(max_lag)
    }

    /// Read with a preference.
    pub fn find(&self, pref: ReadPreference, collection: &str, filter: &Value) -> Result<Docs> {
        match pref {
            ReadPreference::Primary => {
                self.router.lock().primary_reads += 1;
                self.primary.collection(collection).find(filter)
            }
            ReadPreference::Secondary => {
                if self.secondaries.is_empty() {
                    self.router.lock().primary_reads += 1;
                    return self.primary.collection(collection).find(filter);
                }
                let i = {
                    let mut rt = self.router.lock();
                    let i = rt.cursor % self.secondaries.len();
                    rt.cursor += 1;
                    rt.secondary_reads += 1;
                    i
                };
                self.secondaries[i].collection(collection).find(filter)
            }
        }
    }

    /// Read tolerating at most `max_lag` pending oplog entries of
    /// staleness: secondaries within the tolerance serve the read
    /// round-robin — so with `max_lag == 0`, fully caught-up
    /// secondaries still spread the load instead of everything
    /// falling on the primary. Only when *no* secondary qualifies
    /// does the primary serve the read.
    pub fn find_with_tolerance(
        &self,
        max_lag: usize,
        collection: &str,
        filter: &Value,
    ) -> Result<Docs> {
        let lags = self.lag();
        let eligible: Vec<usize> = lags
            .iter()
            .enumerate()
            .filter(|&(_, &lag)| lag <= max_lag)
            .map(|(i, _)| i)
            .collect();
        if eligible.is_empty() {
            self.router.lock().primary_reads += 1;
            return self.primary.collection(collection).find(filter);
        }
        let pick = {
            let mut rt = self.router.lock();
            let pick = eligible[rt.cursor % eligible.len()];
            rt.cursor += 1;
            rt.secondary_reads += 1;
            pick
        };
        self.secondaries[pick].collection(collection).find(filter)
    }

    /// Current replication lag (pending entries) per secondary.
    pub fn lag(&self) -> Vec<usize> {
        let oplog_len = self.oplog.lock().len();
        self.applied.lock().iter().map(|a| oplog_len - a).collect()
    }

    /// Fail over: the most-caught-up secondary becomes primary; writes
    /// it never saw are lost (returned as the number of dropped oplog
    /// entries). The old primary is discarded (it crashed).
    pub fn failover(&mut self) -> Result<usize> {
        if self.secondaries.is_empty() {
            return Err(StoreError::Persistence("no secondary to promote".into()));
        }
        let applied = self.applied.lock().clone();
        let (best, &best_applied) = applied
            .iter()
            .enumerate()
            .max_by_key(|(_, &a)| a)
            .expect("non-empty");
        let lost = self.oplog.lock().len() - best_applied;
        let new_primary = self.secondaries.remove(best);
        self.primary = new_primary;
        // Truncate the oplog to what the new primary actually has.
        self.oplog.lock().truncate(best_applied);
        let mut applied = self.applied.lock();
        applied.remove(best);
        for a in applied.iter_mut() {
            *a = (*a).min(best_applied);
        }
        Ok(lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn sharding_distributes_documents() {
        let cluster = ShardedCluster::new(4, "chemsys");
        for i in 0..200 {
            cluster
                .insert_one(
                    "materials",
                    json!({"chemsys": format!("sys-{}", i % 37), "n": i}),
                )
                .unwrap();
        }
        let dist = cluster.distribution("materials");
        assert_eq!(dist.iter().sum::<usize>(), 200);
        // Hash sharding must not send everything to one shard.
        assert!(dist.iter().all(|&n| n > 10), "unbalanced: {dist:?}");
    }

    #[test]
    fn missing_shard_key_rejected() {
        let cluster = ShardedCluster::new(2, "chemsys");
        assert!(cluster.insert_one("m", json!({"x": 1})).is_err());
    }

    #[test]
    fn targeted_vs_scatter_gather() {
        let cluster = ShardedCluster::new(4, "chemsys");
        for i in 0..100 {
            cluster
                .insert_one("m", json!({"chemsys": format!("s{}", i % 10), "gap": i}))
                .unwrap();
        }
        // Equality on the shard key → targeted, single shard.
        let hits = cluster.find("m", &json!({"chemsys": "s3"})).unwrap();
        assert_eq!(hits.len(), 10);
        // Range query → scatter-gather.
        let hits = cluster.find("m", &json!({"gap": {"$gte": 90}})).unwrap();
        assert_eq!(hits.len(), 10);
        let (targeted, scatter) = cluster.routing_stats();
        assert_eq!((targeted, scatter), (1, 1));
    }

    #[test]
    fn cluster_count_and_update() {
        let cluster = ShardedCluster::new(3, "k");
        for i in 0..30 {
            cluster.insert_one("c", json!({"k": i, "v": 0})).unwrap();
        }
        assert_eq!(cluster.count("c", &json!({})).unwrap(), 30);
        let r = cluster
            .update_many("c", &json!({"v": 0}), &json!({"$set": {"v": 1}}))
            .unwrap();
        assert_eq!(r.modified, 30);
        assert_eq!(cluster.count("c", &json!({"v": 1})).unwrap(), 30);
    }

    #[test]
    fn cluster_grows_and_rebalances() {
        let cluster = ShardedCluster::new(2, "k");
        for i in 0..100 {
            cluster.insert_one("c", json!({"k": i, "_id": i})).unwrap();
        }
        // Grow to 4 shards: reuse the two existing databases, add two
        // empty ones, then migrate misplaced documents.
        let mut shards: Vec<Database> = (0..2).map(|i| cluster.shard(i).clone()).collect();
        shards.push(Database::new());
        shards.push(Database::new());
        let grown = ShardedCluster::from_shards(shards, "k");
        let moved = grown.rebalance("c").unwrap();
        assert!(moved > 0, "growing 2→4 shards must relocate documents");
        assert_eq!(grown.rebalance("c").unwrap(), 0, "rebalance is idempotent");
        assert_eq!(grown.count("c", &json!({})).unwrap(), 100);
        // Targeted reads route correctly after the migration.
        for i in 0..100 {
            assert_eq!(grown.find("c", &json!({"k": i})).unwrap().len(), 1);
        }
        let dist = grown.distribution("c");
        assert!(dist.iter().all(|&n| n > 0), "unbalanced: {dist:?}");
    }

    #[test]
    fn replication_catches_up() {
        let rs = ReplicaSet::new(2, 10);
        for i in 0..25 {
            rs.insert_one("c", json!({ "i": i })).unwrap();
        }
        assert_eq!(rs.lag(), vec![25, 25]);
        rs.replicate().unwrap();
        assert_eq!(rs.lag(), vec![15, 15]);
        rs.replicate().unwrap();
        let final_lag = rs.replicate().unwrap();
        assert_eq!(final_lag, 0);
        // Secondaries now serve the full dataset.
        let hits = rs
            .find(ReadPreference::Secondary, "c", &json!({"i": {"$gte": 0}}))
            .unwrap();
        assert_eq!(hits.len(), 25);
    }

    #[test]
    fn stale_secondary_reads_are_visible_as_staleness() {
        let rs = ReplicaSet::new(1, 5);
        for i in 0..10 {
            rs.insert_one("c", json!({ "i": i })).unwrap();
        }
        rs.replicate().unwrap(); // only 5 applied
        let primary = rs.find(ReadPreference::Primary, "c", &json!({})).unwrap();
        let secondary = rs.find(ReadPreference::Secondary, "c", &json!({})).unwrap();
        assert_eq!(primary.len(), 10);
        assert_eq!(secondary.len(), 5, "secondary lags by design");
    }

    #[test]
    fn updates_replicate_too() {
        let rs = ReplicaSet::new(1, 100);
        rs.insert_one("c", json!({"_id": 1, "v": 0})).unwrap();
        rs.update_many("c", &json!({"_id": 1}), &json!({"$set": {"v": 9}}))
            .unwrap();
        rs.replicate().unwrap();
        let sec = rs
            .find(ReadPreference::Secondary, "c", &json!({"_id": 1}))
            .unwrap();
        assert_eq!(sec[0]["v"], json!(9));
    }

    #[test]
    fn tolerant_reads_round_robin_caught_up_secondaries() {
        let rs = ReplicaSet::new(2, 100);
        for i in 0..4 {
            rs.insert_one("c", json!({ "i": i })).unwrap();
        }
        while rs.replicate().unwrap() > 0 {}
        // Stamp each secondary out-of-band so the serving replica is
        // observable from the read result.
        rs.secondary(0)
            .collection("who")
            .insert_one(json!({"sec": 0}))
            .unwrap();
        rs.secondary(1)
            .collection("who")
            .insert_one(json!({"sec": 1}))
            .unwrap();
        let mut served = Vec::new();
        for _ in 0..4 {
            let hits = rs.find_with_tolerance(0, "who", &json!({})).unwrap();
            assert_eq!(hits.len(), 1);
            served.push(hits[0]["sec"].as_i64().unwrap());
        }
        served.sort_unstable();
        assert_eq!(
            served,
            vec![0, 0, 1, 1],
            "caught-up secondaries must share the reads round-robin"
        );
        let (primary, secondary) = rs.read_distribution();
        assert_eq!(
            (primary, secondary),
            (0, 4),
            "max_lag == 0 with caught-up secondaries must not touch the primary"
        );
    }

    #[test]
    fn tolerant_reads_fall_back_to_primary_when_all_lag() {
        let rs = ReplicaSet::new(2, 1);
        for i in 0..5 {
            rs.insert_one("c", json!({ "i": i })).unwrap();
        }
        // Nothing replicated yet: every secondary lags by 5 > 0.
        let hits = rs.find_with_tolerance(0, "c", &json!({})).unwrap();
        assert_eq!(hits.len(), 5, "primary serves when no secondary qualifies");
        assert_eq!(rs.read_distribution(), (1, 0));
        // A tolerance of 5 admits the (empty, stale) secondaries again.
        let hits = rs.find_with_tolerance(5, "c", &json!({})).unwrap();
        assert_eq!(hits.len(), 0, "stale secondary has applied nothing yet");
        assert_eq!(rs.read_distribution(), (1, 1));
    }

    #[test]
    fn failover_promotes_most_caught_up_and_bounds_loss() {
        let mut rs = ReplicaSet::new(2, 6);
        for i in 0..10 {
            rs.insert_one("c", json!({ "i": i })).unwrap();
        }
        rs.replicate().unwrap(); // both secondaries at 6/10
        let lost = rs.failover().unwrap();
        assert_eq!(lost, 4, "un-replicated writes are lost");
        // The new primary serves the replicated prefix and accepts writes.
        assert_eq!(
            rs.find(ReadPreference::Primary, "c", &json!({}))
                .unwrap()
                .len(),
            6
        );
        rs.insert_one("c", json!({"i": 99})).unwrap();
        assert_eq!(
            rs.find(ReadPreference::Primary, "c", &json!({}))
                .unwrap()
                .len(),
            7
        );
    }

    #[test]
    fn failover_without_secondaries_fails() {
        let mut rs = ReplicaSet::new(0, 1);
        assert!(rs.failover().is_err());
    }
}
