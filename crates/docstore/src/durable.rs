//! Write-behind durability seam: a [`Database`] paired with a
//! [`Persister`], where every mutation the public surface offers is
//! applied live and then journaled as a [`JournalOp`].
//!
//! This is the journal-coverage contract `mp-lint effects` (E002)
//! enforces statically: each `DurableDatabase` method that reaches a
//! collection mutation primitive must also reach the journal, so a
//! recovered database replays to the same documents, index definitions,
//! and collection set as the live one. The proptest in
//! `tests/durable_replay.rs` checks the same property dynamically with
//! random operation sequences.
//!
//! ## Semantics and limitations (the WAL PR inherits these)
//!
//! * **Write-behind, not write-ahead.** The live mutation commits
//!   before the journal append; a crash between the two loses that one
//!   operation (MongoDB's default `j:false` acknowledgment has the same
//!   window). The ROADMAP's WAL engine flips the order; this seam pins
//!   the coverage contract it must keep.
//! * **Replay determinism.** Document ids are assigned in insertion
//!   order and recovery preserves it, so filter-addressed replay
//!   (`update_one`, `delete_one`) selects the same documents. The one
//!   sorted selector, [`find_one_and_update`](Self::find_one_and_update),
//!   is journaled as an `_id`-targeted update so replay does not depend
//!   on re-running the sort.
//! * **`$currentDate`** reads the simulated clock, which is not
//!   persisted; replaying such an update under a different clock gives
//!   a different timestamp.
//! * **Checkpointing** ([`Self::checkpoint`]) excludes concurrent
//!   journal appenders for the duration of the snapshot write, but an
//!   operation applied live and not yet journaled when the checkpoint
//!   runs is captured by the snapshot *and* journaled after it —
//!   harmless for inserts (duplicate `_id` replays are ignored) but an
//!   `$inc`-style update would replay twice. Quiesce writers around
//!   checkpoints; the WAL PR removes the caveat.

use crate::collection::UpdateResult;
use crate::cursor::FindOptions;
use crate::database::Database;
use crate::error::{Result, StoreError};
use crate::persist::{JournalOp, Persister};
use crate::value::Document;
use mp_sync::{LockRank, OrderedMutex};
use serde_json::{json, Value};
use std::path::Path;
use std::sync::Arc;

/// A database whose mutations are journaled for crash recovery.
pub struct DurableDatabase {
    db: Database,
    /// Journal writer. `LockRank::Journal` (380) sits *outside*
    /// `Database` (400) so [`Self::checkpoint`] may read collections
    /// while excluding appenders; mutation paths take it with no other
    /// lock held (live apply completes, and releases its locks, first).
    journal: OrderedMutex<Persister>,
}

impl DurableDatabase {
    /// Open the directory, recovering whatever snapshot + journal it
    /// holds (an empty directory yields an empty database).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let persister = Persister::open(dir)?;
        let db = persister.recover()?;
        Ok(DurableDatabase {
            db,
            journal: OrderedMutex::new(LockRank::Journal, persister),
        })
    }

    /// The live database, for reads. Mutating through this handle
    /// bypasses the journal — mutate via the `DurableDatabase` methods.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Fetch the stored form of a just-inserted document so the journal
    /// records what the store holds (assigned `_id` included), not what
    /// the caller passed in.
    fn stored_doc(&self, collection: &str, id: &Value) -> Result<Arc<Document>> {
        self.db.collection(collection).get(id).ok_or_else(|| {
            StoreError::Persistence(format!(
                "inserted document {id} vanished from '{collection}' before journaling"
            ))
        })
    }

    /// Insert one document; journals the post-insert form.
    pub fn insert_one(&self, collection: &str, doc: Value) -> Result<Value> {
        let id = self.db.collection(collection).insert_one(doc)?;
        let stored = self.stored_doc(collection, &id)?;
        self.journal.lock().log(&JournalOp::Insert {
            collection: collection.to_string(),
            doc: (*stored).clone(),
        })?;
        Ok(id)
    }

    /// Insert many documents; stops at the first error. The successful
    /// prefix is journaled even when a later document fails, so the
    /// journal never trails the live state.
    pub fn insert_many(&self, collection: &str, docs: Vec<Value>) -> Result<Vec<Value>> {
        let coll = self.db.collection(collection);
        let mut ids = Vec::with_capacity(docs.len());
        let mut ops = Vec::with_capacity(docs.len());
        let mut failure = None;
        for doc in docs {
            match coll.insert_one(doc) {
                Ok(id) => {
                    let stored = self.stored_doc(collection, &id)?;
                    ops.push(JournalOp::Insert {
                        collection: collection.to_string(),
                        doc: (*stored).clone(),
                    });
                    ids.push(id);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.journal.lock().log_many(&ops)?;
        match failure {
            Some(e) => Err(e),
            None => Ok(ids),
        }
    }

    /// Update all matching documents.
    pub fn update_many(
        &self,
        collection: &str,
        filter: &Value,
        update: &Value,
    ) -> Result<UpdateResult> {
        let r = self.db.collection(collection).update_many(filter, update)?;
        if r.modified > 0 {
            self.journal.lock().log(&JournalOp::Update {
                collection: collection.to_string(),
                filter: filter.clone(),
                update: update.clone(),
                many: true,
            })?;
        }
        Ok(r)
    }

    /// Update the first matching document.
    pub fn update_one(
        &self,
        collection: &str,
        filter: &Value,
        update: &Value,
    ) -> Result<UpdateResult> {
        let r = self.db.collection(collection).update_one(filter, update)?;
        if r.modified > 0 {
            self.journal.lock().log(&JournalOp::Update {
                collection: collection.to_string(),
                filter: filter.clone(),
                update: update.clone(),
                many: false,
            })?;
        }
        Ok(r)
    }

    /// Update one; insert a new document from the update if none
    /// matched. An upsert-insert is journaled as the insert of the
    /// materialized document (the filter seed plus the applied update),
    /// so replay does not re-run the upsert decision.
    pub fn upsert(&self, collection: &str, filter: &Value, update: &Value) -> Result<UpdateResult> {
        let r = self.db.collection(collection).upsert(filter, update)?;
        if r.upserted {
            let id = r.upserted_id.clone().ok_or_else(|| {
                StoreError::Persistence("upsert inserted but reported no _id".into())
            })?;
            let stored = self.stored_doc(collection, &id)?;
            self.journal.lock().log(&JournalOp::Insert {
                collection: collection.to_string(),
                doc: (*stored).clone(),
            })?;
        } else if r.modified > 0 {
            self.journal.lock().log(&JournalOp::Update {
                collection: collection.to_string(),
                filter: filter.clone(),
                update: update.clone(),
                many: false,
            })?;
        }
        Ok(r)
    }

    /// Atomic find-and-modify (the queue-claim primitive). Journaled as
    /// an `_id`-targeted `update_one` on the claimed document — replay
    /// must touch exactly the document the live sort selected, without
    /// depending on candidate order. (`_id` is immutable through
    /// updates, so the returned document's id addresses the pre-image.)
    pub fn find_one_and_update(
        &self,
        collection: &str,
        filter: &Value,
        update: &Value,
        sort: Option<&FindOptions>,
        return_new: bool,
    ) -> Result<Option<Arc<Document>>> {
        let got = self
            .db
            .collection(collection)
            .find_one_and_update(filter, update, sort, return_new)?;
        if let Some(doc) = &got {
            let id = doc.get("_id").cloned().unwrap_or(Value::Null);
            self.journal.lock().log(&JournalOp::Update {
                collection: collection.to_string(),
                filter: json!({ "_id": id }),
                update: update.clone(),
                many: false,
            })?;
        }
        Ok(got)
    }

    /// Delete all matching documents; returns how many.
    pub fn delete_many(&self, collection: &str, filter: &Value) -> Result<usize> {
        let n = self.db.collection(collection).delete_many(filter)?;
        if n > 0 {
            self.journal.lock().log(&JournalOp::Delete {
                collection: collection.to_string(),
                filter: filter.clone(),
                many: true,
            })?;
        }
        Ok(n)
    }

    /// Delete the first matching document. Returns true if one was
    /// removed.
    pub fn delete_one(&self, collection: &str, filter: &Value) -> Result<bool> {
        let removed = self.db.collection(collection).delete_one(filter)?;
        if removed {
            self.journal.lock().log(&JournalOp::Delete {
                collection: collection.to_string(),
                filter: filter.clone(),
                many: false,
            })?;
        }
        Ok(removed)
    }

    /// Remove every document (index definitions survive).
    pub fn clear(&self, collection: &str) -> Result<()> {
        self.db.collection(collection).clear();
        self.journal.lock().log(&JournalOp::Clear {
            collection: collection.to_string(),
        })
    }

    /// Create a secondary index. Journaled unconditionally — replaying
    /// an index that already exists is a no-op.
    pub fn create_index(&self, collection: &str, path: &str, unique: bool) -> Result<()> {
        self.db.collection(collection).create_index(path, unique)?;
        self.journal.lock().log(&JournalOp::CreateIndex {
            collection: collection.to_string(),
            path: path.to_string(),
            unique,
        })
    }

    /// Drop the secondary index on `path`.
    pub fn drop_index(&self, collection: &str, path: &str) -> Result<()> {
        self.db.collection(collection).drop_index(path)?;
        self.journal.lock().log(&JournalOp::DropIndex {
            collection: collection.to_string(),
            path: path.to_string(),
        })
    }

    /// Drop a collection entirely. Returns true if it existed.
    pub fn drop_collection(&self, collection: &str) -> Result<bool> {
        let existed = self.db.drop_collection(collection);
        if existed {
            self.journal.lock().log(&JournalOp::DropCollection {
                collection: collection.to_string(),
            })?;
        }
        Ok(existed)
    }

    /// Write a full snapshot and truncate the journal.
    ///
    /// The journal guard is held across the snapshot write on purpose:
    /// an append landing mid-snapshot would be truncated away while its
    /// effect is only partially captured. `Journal` (380) ranks outside
    /// `Database` (400)/`Collection` (500), so the reads inside
    /// `snapshot` stay rank-clean.
    // mp-lint: allow(E003) — the journal mutex exists to serialize journal-file I/O; a checkpoint must exclude appenders for exactly the duration of the snapshot write (see the rank note above)
    pub fn checkpoint(&self) -> Result<()> {
        let mut persister = self.journal.lock();
        persister.snapshot(&self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-durable-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn reopen(dir: &Path) -> DurableDatabase {
        DurableDatabase::open(dir).unwrap()
    }

    #[test]
    fn mutations_survive_reopen_without_checkpoint() {
        let dir = tmpdir("reopen");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            d.insert_one("c", json!({"_id": 1, "n": 0})).unwrap();
            d.insert_many("c", vec![json!({"_id": 2}), json!({"_id": 3})])
                .unwrap();
            d.update_one("c", &json!({"_id": 1}), &json!({"$inc": {"n": 5}}))
                .unwrap();
            d.delete_one("c", &json!({"_id": 3})).unwrap();
        }
        let d = reopen(&dir);
        let db = d.database();
        assert_eq!(db.collection("c").len(), 2);
        assert_eq!(db.collection("c").get(&json!(1)).unwrap()["n"], json!(5));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ddl_survives_reopen() {
        let dir = tmpdir("ddl");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            d.create_index("c", "k", true).unwrap();
            d.insert_one("c", json!({"k": 1})).unwrap();
            d.clear("c").unwrap();
            d.insert_one("gone", json!({"x": 1})).unwrap();
            d.drop_collection("gone").unwrap();
        }
        let d = reopen(&dir);
        let db = d.database();
        assert_eq!(db.collection("c").len(), 0);
        assert_eq!(db.collection("c").index_specs(), vec![("k".into(), true)]);
        assert_eq!(db.collection_names(), vec!["c".to_string()]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn upsert_journals_the_materialized_insert() {
        let dir = tmpdir("upsert");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            let r = d
                .upsert("c", &json!({"key": "k1"}), &json!({"$set": {"v": 1}}))
                .unwrap();
            assert!(r.upserted);
            let r = d
                .upsert("c", &json!({"key": "k1"}), &json!({"$set": {"v": 2}}))
                .unwrap();
            assert!(!r.upserted);
        }
        let d = reopen(&dir);
        let c = d.database().collection("c");
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.find_one(&json!({"key": "k1"})).unwrap().unwrap()["v"],
            json!(2)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn find_one_and_update_replays_the_sorted_claim() {
        let dir = tmpdir("claim");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            d.insert_many(
                "q",
                vec![
                    json!({"_id": "a", "state": "READY", "prio": 1}),
                    json!({"_id": "b", "state": "READY", "prio": 9}),
                ],
            )
            .unwrap();
            // The sort claims "b"; a naive update_one replay would have
            // claimed "a" (first candidate in _id order).
            let claimed = d
                .find_one_and_update(
                    "q",
                    &json!({"state": "READY"}),
                    &json!({"$set": {"state": "RUNNING"}}),
                    Some(&FindOptions::all().sort_by("prio", crate::cursor::SortDir::Desc)),
                    true,
                )
                .unwrap()
                .unwrap();
            assert_eq!(claimed["_id"], json!("b"));
        }
        let d = reopen(&dir);
        let c = d.database().collection("q");
        assert_eq!(c.get(&json!("b")).unwrap()["state"], json!("RUNNING"));
        assert_eq!(c.get(&json!("a")).unwrap()["state"], json!("READY"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checkpoint_truncates_journal_and_survives() {
        let dir = tmpdir("ckpt");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            for i in 0..20 {
                d.insert_one("c", json!({"_id": i})).unwrap();
            }
            d.checkpoint().unwrap();
            assert!(
                !dir.join("journal.jsonl").exists(),
                "checkpoint must truncate the journal"
            );
            d.insert_one("c", json!({"_id": 100})).unwrap();
        }
        let d = reopen(&dir);
        assert_eq!(d.database().collection("c").len(), 21);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn insert_many_journals_the_successful_prefix() {
        let dir = tmpdir("prefix");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            let r = d.insert_many(
                "c",
                vec![
                    json!({"_id": 1}),
                    json!({"_id": 2}),
                    json!({"_id": 1}), // duplicate: fails here
                    json!({"_id": 4}),
                ],
            );
            assert!(r.is_err());
            assert_eq!(d.database().collection("c").len(), 2);
        }
        let d = reopen(&dir);
        assert_eq!(
            d.database().collection("c").len(),
            2,
            "journal must cover exactly the applied prefix"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
