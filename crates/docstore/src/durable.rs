//! Write-ahead durability seam: a [`Database`] paired with a
//! [`Persister`] WAL, where every mutation the public surface offers is
//! journaled as a [`JournalOp`] *before* it is applied live, and
//! acknowledged only after a group-commit durability barrier.
//!
//! Two lint contracts pin this seam statically. `mp-lint effects`
//! (E002) proves *coverage*: each `DurableDatabase` method that reaches
//! a collection mutation primitive also reaches the journal. `mp-lint
//! order` (O0xx) proves *ordering*: in every method's sequenced effect
//! trace the journal append precedes the in-memory apply (O001) and the
//! last append is followed by a durability barrier before the caller
//! sees `Ok` (O002). The proptest in `tests/durable_replay.rs` checks
//! replay equivalence dynamically; `tests/wal_crash_matrix.rs` kills
//! the write path at every event boundary and byte offset.
//!
//! ## The commit protocol
//!
//! ```text
//! materialize → append frames (WAL lock) → apply in memory (same lock)
//!             → release → group-commit fsync barrier → Ok
//! ```
//!
//! * **Materialize first.** Anything the live apply would decide —
//!   assigned `_id`s, the upsert insert-vs-update branch, the sorted
//!   find-and-modify target — is decided *before* the append, so the
//!   WAL records exactly what the store will do and replay re-decides
//!   nothing.
//! * **Append and apply under one guard.** Journal order is apply
//!   order; replay applies ops in WAL order and reaches the same state.
//! * **Barrier outside the guard.** The fsync happens after the WAL
//!   lock is released, so committers pile up on the [`GroupCommit`]
//!   sync lock and one leader fsync covers the whole queue — batching
//!   without timers. A crash after append but before the barrier may
//!   preserve the op (the OS got the bytes) or tear it; either way the
//!   caller never saw `Ok`, so both outcomes are correct.
//! * **An op that fails to apply stays in the WAL.** Replay is
//!   best-effort ([`JournalOp::apply`]) and fails the same
//!   deterministic way, converging on the live outcome.
//!
//! **`$currentDate`** reads the simulated clock, which is not
//! persisted; replaying such an update under a different clock gives a
//! different timestamp.
//!
//! Compaction is log-structured: when the WAL outgrows
//! [`DurableOptions::compact_after_bytes`], the committing call
//! checkpoints — snapshot, fsync, truncate the WAL — so recovery time
//! tracks the compaction threshold, not total writes (the
//! recovery-time-vs-log-length curve in `BENCH_wal.json`).

use crate::collection::{Collection, UpdateResult};
use crate::cursor::FindOptions;
use crate::database::Database;
use crate::error::{Result, StoreError};
use crate::persist::{GroupCommit, JournalOp, Persister};
use crate::query::Filter;
use crate::update::Update;
use crate::value::Document;
use mp_sync::{LockRank, OrderedMutex};
use serde_json::{json, Value};
use std::path::Path;
use std::sync::Arc;

/// Tunables for the write-ahead store.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Issue the group-commit fsync barrier before acknowledging. `false`
    /// degrades acknowledgment to write-behind durability (the bytes
    /// reach the OS but not necessarily the disk) — the bench baseline,
    /// and MongoDB's `j:false`.
    pub fsync: bool,
    /// Checkpoint (snapshot + WAL truncate) once the WAL exceeds this
    /// many bytes. `None` disables auto-compaction.
    pub compact_after_bytes: Option<u64>,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: true,
            compact_after_bytes: Some(16 * 1024 * 1024),
        }
    }
}

/// A database whose mutations are write-ahead journaled for crash
/// recovery.
pub struct DurableDatabase {
    db: Database,
    /// WAL writer. `LockRank::Journal` (380) sits *outside* `Database`
    /// (400) so the commit protocol may apply collection mutations while
    /// holding it (append order == apply order), and so
    /// [`Self::checkpoint`] may read collections while excluding
    /// appenders.
    journal: OrderedMutex<Persister>,
    /// Group-commit barrier (`LockRank::JournalSync`, taken with the
    /// WAL lock released).
    sync: Arc<GroupCommit>,
    opts: DurableOptions,
}

impl DurableDatabase {
    /// Open the directory with default options, recovering whatever
    /// snapshot + WAL it holds (an empty directory yields an empty
    /// database).
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with(dir, DurableOptions::default())
    }

    /// Open with explicit [`DurableOptions`].
    pub fn open_with(dir: impl AsRef<Path>, opts: DurableOptions) -> Result<Self> {
        let mut persister = Persister::open(dir)?;
        let db = persister.recover()?;
        let sync = persister.sync_handle();
        Ok(DurableDatabase {
            db,
            journal: OrderedMutex::new(LockRank::Journal, persister),
            sync,
            opts,
        })
    }

    /// The live database, for reads. Mutating through this handle
    /// bypasses the WAL — mutate via the `DurableDatabase` methods.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// (`sync_to` barriers requested, fsyncs actually issued): the gap
    /// is the group-commit batching win.
    pub fn commit_stats(&self) -> (u64, u64) {
        self.sync.stats()
    }

    /// Current WAL length in bytes (the compaction trigger input).
    pub fn wal_len(&self) -> u64 {
        self.journal.lock().wal_len()
    }

    /// Assign a fresh `_id` if `doc` lacks one, so the WAL records the
    /// document the store will hold.
    fn materialize_id(coll: &Collection, mut doc: Value) -> Result<Value> {
        if doc.get("_id").is_none() {
            match doc.as_object_mut() {
                Some(obj) => {
                    obj.insert("_id".into(), coll.reserve_id());
                }
                None => {
                    return Err(StoreError::InvalidDocument(
                        "document must be a JSON object".into(),
                    ))
                }
            }
        }
        Ok(doc)
    }

    /// The write-ahead commit core: append `ops` to the WAL, apply them
    /// in memory under the same guard, then issue the durability
    /// barrier with the guard released.
    // mp-lint: allow(E003) — write-ahead core: the frames must hit the WAL before the in-memory apply, and both must happen under one guard so journal order is apply order; the barrier waits outside
    fn commit<T>(
        &self,
        ops: &[JournalOp],
        apply: impl FnOnce(&Database) -> Result<T>,
    ) -> Result<T> {
        let lsn;
        let out;
        {
            let mut wal = self.journal.lock();
            lsn = wal.append_ops(ops)?;
            out = apply(&self.db);
        }
        self.barrier(lsn)?;
        self.maybe_compact()?;
        out
    }

    /// Group-commit durability barrier for byte offset `lsn`.
    fn barrier(&self, lsn: u64) -> Result<()> {
        if self.opts.fsync {
            self.sync.sync_to(lsn)?;
        }
        Ok(())
    }

    /// Checkpoint if the WAL outgrew the compaction threshold.
    fn maybe_compact(&self) -> Result<()> {
        let Some(limit) = self.opts.compact_after_bytes else {
            return Ok(());
        };
        if self.wal_len() > limit {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Insert one document; the WAL records its materialized form
    /// (assigned `_id` included) before the live insert.
    pub fn insert_one(&self, collection: &str, doc: Value) -> Result<Value> {
        let coll = self.db.collection(collection);
        let doc = Self::materialize_id(&coll, doc)?;
        self.commit(
            &[JournalOp::Insert {
                collection: collection.to_string(),
                doc: doc.clone(),
            }],
            |db| db.collection(collection).insert_one(doc),
        )
    }

    /// Insert many documents; stops at the first error. Each document's
    /// frame is appended before its insert, interleaved under one guard
    /// hold, so the WAL covers the applied prefix (plus at most the one
    /// op that failed, which replays as the same failure); a single
    /// barrier covers the whole batch.
    // mp-lint: allow(E003) — write-ahead core: per-document append-then-apply must interleave under one guard so the WAL orders exactly the applied prefix; one barrier then covers the batch
    pub fn insert_many(&self, collection: &str, docs: Vec<Value>) -> Result<Vec<Value>> {
        let coll = self.db.collection(collection);
        let mut ids = Vec::with_capacity(docs.len());
        let mut failure = None;
        let mut lsn = 0;
        {
            let mut wal = self.journal.lock();
            for doc in docs {
                let doc = match Self::materialize_id(&coll, doc) {
                    Ok(d) => d,
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                };
                lsn = wal.append_ops(&[JournalOp::Insert {
                    collection: collection.to_string(),
                    doc: doc.clone(),
                }])?;
                match coll.insert_one(doc) {
                    Ok(id) => ids.push(id),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            }
        }
        self.barrier(lsn)?;
        self.maybe_compact()?;
        match failure {
            Some(e) => Err(e),
            None => Ok(ids),
        }
    }

    /// Update all matching documents.
    pub fn update_many(
        &self,
        collection: &str,
        filter: &Value,
        update: &Value,
    ) -> Result<UpdateResult> {
        Filter::parse(filter)?;
        Update::parse(update)?;
        self.commit(
            &[JournalOp::Update {
                collection: collection.to_string(),
                filter: filter.clone(),
                update: update.clone(),
                many: true,
            }],
            |db| db.collection(collection).update_many(filter, update),
        )
    }

    /// Update the first matching document.
    pub fn update_one(
        &self,
        collection: &str,
        filter: &Value,
        update: &Value,
    ) -> Result<UpdateResult> {
        Filter::parse(filter)?;
        Update::parse(update)?;
        self.commit(
            &[JournalOp::Update {
                collection: collection.to_string(),
                filter: filter.clone(),
                update: update.clone(),
                many: false,
            }],
            |db| db.collection(collection).update_one(filter, update),
        )
    }

    /// Update one; insert a new document from the update if none
    /// matched. The insert-vs-update decision is made under the WAL
    /// guard and journaled in its decided form — an upsert-insert as
    /// the insert of the materialized document (filter seed plus
    /// applied update, `_id` assigned) — so replay re-decides nothing.
    // mp-lint: allow(E003) — write-ahead core: the upsert branch decision, its append, and its apply must share one guard hold or a concurrent upsert could double-insert; the barrier waits outside
    pub fn upsert(&self, collection: &str, filter: &Value, update: &Value) -> Result<UpdateResult> {
        let coll = self.db.collection(collection);
        let lsn;
        let res;
        {
            let mut wal = self.journal.lock();
            if coll.find_one(filter)?.is_some() {
                lsn = wal.append_ops(&[JournalOp::Update {
                    collection: collection.to_string(),
                    filter: filter.clone(),
                    update: update.clone(),
                    many: false,
                }])?;
                res = coll.update_one(filter, update);
            } else {
                let seed = coll.materialize_upsert(filter, update)?;
                let seed = Self::materialize_id(&coll, seed)?;
                lsn = wal.append_ops(&[JournalOp::Insert {
                    collection: collection.to_string(),
                    doc: seed.clone(),
                }])?;
                res = coll.insert_one(seed).map(|id| UpdateResult {
                    matched: 0,
                    modified: 0,
                    upserted: true,
                    upserted_id: Some(id),
                });
            }
        }
        self.barrier(lsn)?;
        self.maybe_compact()?;
        res
    }

    /// Atomic find-and-modify (the queue-claim primitive). The sorted
    /// claim target is chosen under the WAL guard and journaled as an
    /// `_id`-targeted `update_one` — replay must touch exactly the
    /// document the live sort selected, without re-running the sort.
    /// (`_id` is immutable through updates, so the pre-image's id
    /// addresses the claimed document.)
    // mp-lint: allow(E003) — write-ahead core: the sorted target choice, its append, and its apply must share one guard hold or a concurrent claim could pick the same document; the barrier waits outside
    pub fn find_one_and_update(
        &self,
        collection: &str,
        filter: &Value,
        update: &Value,
        sort: Option<&FindOptions>,
        return_new: bool,
    ) -> Result<Option<Arc<Document>>> {
        Update::parse(update)?;
        let coll = self.db.collection(collection);
        let lsn;
        let pre;
        {
            let mut wal = self.journal.lock();
            let mut candidates = coll.find(filter)?;
            if let Some(s) = sort {
                s.apply_order(&mut candidates);
            }
            let Some(first) = candidates.first() else {
                return Ok(None);
            };
            pre = Arc::clone(first);
            let id = pre.get("_id").cloned().unwrap_or(Value::Null);
            lsn = wal.append_ops(&[JournalOp::Update {
                collection: collection.to_string(),
                filter: json!({ "_id": id }),
                update: update.clone(),
                many: false,
            }])?;
            coll.update_one(&json!({ "_id": id }), update)?;
        }
        self.barrier(lsn)?;
        self.maybe_compact()?;
        if return_new {
            let id = pre.get("_id").cloned().unwrap_or(Value::Null);
            Ok(coll.get(&id))
        } else {
            Ok(Some(pre))
        }
    }

    /// Delete all matching documents; returns how many.
    pub fn delete_many(&self, collection: &str, filter: &Value) -> Result<usize> {
        Filter::parse(filter)?;
        self.commit(
            &[JournalOp::Delete {
                collection: collection.to_string(),
                filter: filter.clone(),
                many: true,
            }],
            |db| db.collection(collection).delete_many(filter),
        )
    }

    /// Delete the first matching document. Returns true if one was
    /// removed.
    pub fn delete_one(&self, collection: &str, filter: &Value) -> Result<bool> {
        Filter::parse(filter)?;
        self.commit(
            &[JournalOp::Delete {
                collection: collection.to_string(),
                filter: filter.clone(),
                many: false,
            }],
            |db| db.collection(collection).delete_one(filter),
        )
    }

    /// Remove every document (index definitions survive).
    pub fn clear(&self, collection: &str) -> Result<()> {
        self.commit(
            &[JournalOp::Clear {
                collection: collection.to_string(),
            }],
            |db| {
                db.collection(collection).clear();
                Ok(())
            },
        )
    }

    /// Create a secondary index. Journaled unconditionally — replaying
    /// an index that already exists is a no-op.
    pub fn create_index(&self, collection: &str, path: &str, unique: bool) -> Result<()> {
        self.commit(
            &[JournalOp::CreateIndex {
                collection: collection.to_string(),
                path: path.to_string(),
                unique,
            }],
            |db| db.collection(collection).create_index(path, unique),
        )
    }

    /// Drop the secondary index on `path`.
    pub fn drop_index(&self, collection: &str, path: &str) -> Result<()> {
        self.commit(
            &[JournalOp::DropIndex {
                collection: collection.to_string(),
                path: path.to_string(),
            }],
            |db| db.collection(collection).drop_index(path),
        )
    }

    /// Drop a collection entirely. Returns true if it existed.
    pub fn drop_collection(&self, collection: &str) -> Result<bool> {
        self.commit(
            &[JournalOp::DropCollection {
                collection: collection.to_string(),
            }],
            |db| Ok(db.drop_collection(collection)),
        )
    }

    /// Write a full snapshot (fsynced) and truncate the WAL.
    ///
    /// The WAL guard is held across the snapshot write on purpose: an
    /// append landing mid-snapshot would be truncated away while its
    /// effect is only partially captured. `Journal` (380) ranks outside
    /// `Database` (400)/`Collection` (500), so the reads inside
    /// `snapshot` stay rank-clean. With the write-ahead protocol the
    /// PR 7 caveat is gone: nothing is ever applied live without being
    /// in the WAL first, so the snapshot can never capture an
    /// un-journaled op.
    // mp-lint: allow(E003) — the WAL mutex exists to serialize journal-file I/O; a checkpoint must exclude appenders for exactly the duration of the snapshot write (see the rank note above)
    pub fn checkpoint(&self) -> Result<()> {
        let mut persister = self.journal.lock();
        persister.snapshot(&self.db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("mp-durable-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn reopen(dir: &Path) -> DurableDatabase {
        DurableDatabase::open(dir).unwrap()
    }

    #[test]
    fn mutations_survive_reopen_without_checkpoint() {
        let dir = tmpdir("reopen");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            d.insert_one("c", json!({"_id": 1, "n": 0})).unwrap();
            d.insert_many("c", vec![json!({"_id": 2}), json!({"_id": 3})])
                .unwrap();
            d.update_one("c", &json!({"_id": 1}), &json!({"$inc": {"n": 5}}))
                .unwrap();
            d.delete_one("c", &json!({"_id": 3})).unwrap();
        }
        let d = reopen(&dir);
        let db = d.database();
        assert_eq!(db.collection("c").len(), 2);
        assert_eq!(db.collection("c").get(&json!(1)).unwrap()["n"], json!(5));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ddl_survives_reopen() {
        let dir = tmpdir("ddl");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            d.create_index("c", "k", true).unwrap();
            d.insert_one("c", json!({"k": 1})).unwrap();
            d.clear("c").unwrap();
            d.insert_one("gone", json!({"x": 1})).unwrap();
            d.drop_collection("gone").unwrap();
        }
        let d = reopen(&dir);
        let db = d.database();
        assert_eq!(db.collection("c").len(), 0);
        assert_eq!(db.collection("c").index_specs(), vec![("k".into(), true)]);
        assert_eq!(db.collection_names(), vec!["c".to_string()]);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn upsert_journals_the_materialized_insert() {
        let dir = tmpdir("upsert");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            let r = d
                .upsert("c", &json!({"key": "k1"}), &json!({"$set": {"v": 1}}))
                .unwrap();
            assert!(r.upserted);
            assert!(r.upserted_id.is_some());
            let r = d
                .upsert("c", &json!({"key": "k1"}), &json!({"$set": {"v": 2}}))
                .unwrap();
            assert!(!r.upserted);
        }
        let d = reopen(&dir);
        let c = d.database().collection("c");
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.find_one(&json!({"key": "k1"})).unwrap().unwrap()["v"],
            json!(2)
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn find_one_and_update_replays_the_sorted_claim() {
        let dir = tmpdir("claim");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            d.insert_many(
                "q",
                vec![
                    json!({"_id": "a", "state": "READY", "prio": 1}),
                    json!({"_id": "b", "state": "READY", "prio": 9}),
                ],
            )
            .unwrap();
            // The sort claims "b"; a naive update_one replay would have
            // claimed "a" (first candidate in _id order).
            let claimed = d
                .find_one_and_update(
                    "q",
                    &json!({"state": "READY"}),
                    &json!({"$set": {"state": "RUNNING"}}),
                    Some(&FindOptions::all().sort_by("prio", crate::cursor::SortDir::Desc)),
                    true,
                )
                .unwrap()
                .unwrap();
            assert_eq!(claimed["_id"], json!("b"));
        }
        let d = reopen(&dir);
        let c = d.database().collection("q");
        assert_eq!(c.get(&json!("b")).unwrap()["state"], json!("RUNNING"));
        assert_eq!(c.get(&json!("a")).unwrap()["state"], json!("READY"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn find_one_and_update_returns_pre_image_when_asked() {
        let dir = tmpdir("preimage");
        let d = DurableDatabase::open(&dir).unwrap();
        d.insert_one("q", json!({"_id": 1, "state": "READY"}))
            .unwrap();
        let pre = d
            .find_one_and_update(
                "q",
                &json!({"state": "READY"}),
                &json!({"$set": {"state": "RUNNING"}}),
                None,
                false,
            )
            .unwrap()
            .unwrap();
        assert_eq!(pre["state"], json!("READY"));
        assert_eq!(
            d.database().collection("q").get(&json!(1)).unwrap()["state"],
            json!("RUNNING")
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checkpoint_truncates_wal_and_survives() {
        let dir = tmpdir("ckpt");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            for i in 0..20 {
                d.insert_one("c", json!({"_id": i})).unwrap();
            }
            d.checkpoint().unwrap();
            assert!(
                !dir.join("journal.wal").exists(),
                "checkpoint must truncate the WAL"
            );
            assert_eq!(d.wal_len(), 0);
            d.insert_one("c", json!({"_id": 100})).unwrap();
        }
        let d = reopen(&dir);
        assert_eq!(d.database().collection("c").len(), 21);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn insert_many_stops_at_first_error_and_replays_identically() {
        let dir = tmpdir("prefix");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            let r = d.insert_many(
                "c",
                vec![
                    json!({"_id": 1}),
                    json!({"_id": 2}),
                    json!({"_id": 1}), // duplicate: fails here
                    json!({"_id": 4}),
                ],
            );
            assert!(r.is_err());
            assert_eq!(d.database().collection("c").len(), 2);
        }
        // The WAL holds the two applied inserts plus the journaled
        // duplicate, which replays as the same rejection — never the
        // post-failure documents.
        let d = reopen(&dir);
        assert_eq!(
            d.database().collection("c").len(),
            2,
            "replay must converge on the live outcome"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn rejected_write_replays_as_the_same_rejection() {
        let dir = tmpdir("reject");
        {
            let d = DurableDatabase::open(&dir).unwrap();
            d.create_index("c", "k", true).unwrap();
            d.insert_one("c", json!({"_id": 1, "k": 7})).unwrap();
            // Journaled (write-ahead), then rejected by the unique index.
            assert!(d.insert_one("c", json!({"_id": 2, "k": 7})).is_err());
            d.insert_one("c", json!({"_id": 3, "k": 8})).unwrap();
        }
        let d = reopen(&dir);
        assert_eq!(d.database().collection("c").len(), 2);
        assert!(d.database().collection("c").get(&json!(2)).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn group_commit_batches_a_multi_op_burst() {
        let dir = tmpdir("batch");
        let d = DurableDatabase::open(&dir).unwrap();
        d.insert_many("c", (0..64).map(|i| json!({"_id": i})).collect())
            .unwrap();
        let (commits, syncs) = d.commit_stats();
        assert_eq!(commits, 1, "one barrier per insert_many batch");
        assert!(syncs <= 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn write_behind_mode_skips_the_barrier() {
        let dir = tmpdir("wb");
        let d = DurableDatabase::open_with(
            &dir,
            DurableOptions {
                fsync: false,
                ..DurableOptions::default()
            },
        )
        .unwrap();
        d.insert_one("c", json!({"_id": 1})).unwrap();
        let (commits, syncs) = d.commit_stats();
        assert_eq!((commits, syncs), (0, 0));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn wal_compaction_triggers_at_threshold() {
        let dir = tmpdir("compact");
        let d = DurableDatabase::open_with(
            &dir,
            DurableOptions {
                fsync: true,
                compact_after_bytes: Some(1024),
            },
        )
        .unwrap();
        for i in 0..200 {
            d.insert_one("c", json!({"_id": i, "pad": "x".repeat(32)}))
                .unwrap();
        }
        assert!(
            d.wal_len() <= 1024 + 256,
            "auto-checkpoint must keep the WAL near the threshold, got {}",
            d.wal_len()
        );
        assert!(dir.join("snapshot.jsonl").exists());
        drop(d);
        let d = reopen(&dir);
        assert_eq!(d.database().collection("c").len(), 200);
        let _ = std::fs::remove_dir_all(dir);
    }
}
