//! Collections: thread-safe containers of documents with Mongo-style CRUD,
//! secondary indexes, and atomic find-and-modify (the primitive FireWorks
//! uses to claim queue entries without double-running jobs).

use crate::cursor::FindOptions;
use crate::error::{Result, StoreError};
use crate::index::{DocId, Index};
use crate::profiler::{OpKind, Profiler};
use crate::query::Filter;
use crate::update::Update;
use crate::value::OrderedValue;
use mp_sync::{LockRank, OrderedRwLock};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Outcome of an update call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateResult {
    /// Documents that matched the filter.
    pub matched: usize,
    /// Documents actually modified.
    pub modified: usize,
    /// Whether an upsert inserted a new document.
    pub upserted: bool,
}

struct Inner {
    docs: BTreeMap<DocId, Value>,
    by_id: BTreeMap<OrderedValue, DocId>,
    indexes: Vec<Index>,
}

/// A named collection of JSON documents.
pub struct Collection {
    name: String,
    inner: OrderedRwLock<Inner>,
    next_id: AtomicU64,
    profiler: Arc<Profiler>,
    /// Simulated clock (seconds) used by `$currentDate`; shared with the DB.
    clock: Arc<OrderedRwLock<f64>>,
}

impl Collection {
    pub(crate) fn new(name: &str, profiler: Arc<Profiler>, clock: Arc<OrderedRwLock<f64>>) -> Self {
        Collection {
            name: name.to_string(),
            inner: OrderedRwLock::new(
                LockRank::Collection,
                Inner {
                    docs: BTreeMap::new(),
                    by_id: BTreeMap::new(),
                    indexes: Vec::new(),
                },
            ),
            next_id: AtomicU64::new(1),
            profiler,
            clock,
        }
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// True if the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn now(&self) -> f64 {
        *self.clock.read()
    }

    /// Insert one document. A missing `_id` is assigned automatically.
    /// Returns the document's `_id`.
    pub fn insert_one(&self, mut doc: Value) -> Result<Value> {
        let _t = self.profiler.start(&self.name, OpKind::Insert);
        if !doc.is_object() {
            return Err(StoreError::InvalidDocument(
                "document must be a JSON object".into(),
            ));
        }
        let mut inner = self.inner.write();
        let id_num = self.next_id.fetch_add(1, AtomicOrdering::Relaxed);
        let id_val = match doc.get("_id") {
            Some(v) => v.clone(),
            None => {
                let v = json!(format!("oid{:012x}", id_num));
                match doc.as_object_mut() {
                    Some(obj) => obj.insert("_id".into(), v.clone()),
                    None => {
                        return Err(StoreError::InvalidDocument(
                            "document must be a JSON object".into(),
                        ))
                    }
                };
                v
            }
        };
        if inner.by_id.contains_key(&OrderedValue(id_val.clone())) {
            return Err(StoreError::DuplicateKey(format!("_id {id_val}")));
        }
        // Unique-index check before any mutation.
        for ix in &inner.indexes {
            ix.check_unique(id_num, &doc, None)?;
        }
        for ix in &mut inner.indexes {
            ix.insert(id_num, &doc)?;
        }
        inner.by_id.insert(OrderedValue(id_val.clone()), id_num);
        inner.docs.insert(id_num, doc);
        Ok(id_val)
    }

    /// Insert many documents; stops at the first error.
    pub fn insert_many(&self, docs: Vec<Value>) -> Result<Vec<Value>> {
        docs.into_iter().map(|d| self.insert_one(d)).collect()
    }

    /// Find documents matching a JSON filter with default options.
    pub fn find(&self, filter: &Value) -> Result<Vec<Value>> {
        self.find_with(filter, &FindOptions::all())
    }

    /// Find with sort/skip/limit/projection.
    pub fn find_with(&self, filter: &Value, opts: &FindOptions) -> Result<Vec<Value>> {
        let _t = self.profiler.start(&self.name, OpKind::Find);
        let f = Filter::parse(filter)?;
        let inner = self.inner.read();
        let mut out = self.scan(&inner, &f);
        opts.apply_order(&mut out);
        if opts.projection.is_some() {
            out = out.iter().map(|d| opts.project_doc(d)).collect();
        }
        Ok(out)
    }

    /// First matching document, if any.
    pub fn find_one(&self, filter: &Value) -> Result<Option<Value>> {
        Ok(self.find_with(filter, &FindOptions::all().limit(1))?.pop())
    }

    /// Fetch by `_id` directly.
    pub fn get(&self, id: &Value) -> Option<Value> {
        let inner = self.inner.read();
        let did = *inner.by_id.get(&OrderedValue(id.clone()))?;
        inner.docs.get(&did).cloned()
    }

    /// Count documents matching the filter.
    pub fn count(&self, filter: &Value) -> Result<usize> {
        let _t = self.profiler.start(&self.name, OpKind::Count);
        let f = Filter::parse(filter)?;
        let inner = self.inner.read();
        if f.is_empty() {
            return Ok(inner.docs.len());
        }
        Ok(self
            .candidate_ids(&inner, &f)
            .into_iter()
            .filter(|id| inner.docs.get(id).map(|d| f.matches(d)).unwrap_or(false))
            .count())
    }

    /// Distinct values at `path` among documents matching `filter`.
    pub fn distinct(&self, path: &str, filter: &Value) -> Result<Vec<Value>> {
        let _t = self.profiler.start(&self.name, OpKind::Find);
        let f = Filter::parse(filter)?;
        let inner = self.inner.read();
        let mut set: BTreeMap<OrderedValue, ()> = BTreeMap::new();
        for doc in self.scan(&inner, &f) {
            for v in crate::value::get_path_multi(&doc, path) {
                match v {
                    Value::Array(a) => {
                        for e in a {
                            set.insert(OrderedValue(e.clone()), ());
                        }
                    }
                    other => {
                        set.insert(OrderedValue(other.clone()), ());
                    }
                }
            }
        }
        Ok(set.into_keys().map(|k| k.0).collect())
    }

    /// Update all documents matching `filter`.
    pub fn update_many(&self, filter: &Value, update: &Value) -> Result<UpdateResult> {
        self.update_inner(filter, update, false, false)
    }

    /// Update the first matching document.
    pub fn update_one(&self, filter: &Value, update: &Value) -> Result<UpdateResult> {
        self.update_inner(filter, update, true, false)
    }

    /// Update one; insert a new document from the update if none matched.
    pub fn upsert(&self, filter: &Value, update: &Value) -> Result<UpdateResult> {
        self.update_inner(filter, update, true, true)
    }

    fn update_inner(
        &self,
        filter: &Value,
        update: &Value,
        only_one: bool,
        do_upsert: bool,
    ) -> Result<UpdateResult> {
        let _t = self.profiler.start(&self.name, OpKind::Update);
        let f = Filter::parse(filter)?;
        let u = Update::parse(update)?;
        let now = self.now();
        let mut inner = self.inner.write();
        let ids = self.candidate_ids(&inner, &f);
        let mut res = UpdateResult::default();
        for id in ids {
            let Some(old) = inner.docs.get(&id).filter(|d| f.matches(d)).cloned() else {
                continue;
            };
            res.matched += 1;
            let mut new_doc = old.clone();
            u.apply(&mut new_doc, now, false)?;
            if new_doc != old {
                Self::reindex(&mut inner, id, &old, &new_doc)?;
                inner.docs.insert(id, new_doc);
                res.modified += 1;
            }
            if only_one {
                break;
            }
        }
        if res.matched == 0 && do_upsert {
            drop(inner);
            let mut seed = filter_equality_seed(&f);
            u.apply(&mut seed, now, true)?;
            self.insert_one(seed)?;
            res.upserted = true;
        }
        Ok(res)
    }

    /// Atomically find one matching document, apply `update` to it, and
    /// return it. `return_new` picks the post-update document. When `sort`
    /// is given, the first document under that order is taken — this is
    /// the queue-pop primitive.
    pub fn find_one_and_update(
        &self,
        filter: &Value,
        update: &Value,
        sort: Option<&FindOptions>,
        return_new: bool,
    ) -> Result<Option<Value>> {
        let _t = self.profiler.start(&self.name, OpKind::FindAndModify);
        let f = Filter::parse(filter)?;
        let u = Update::parse(update)?;
        let now = self.now();
        let mut inner = self.inner.write();
        let ids = self.candidate_ids(&inner, &f);
        let mut matches: Vec<(DocId, &Value)> = ids
            .iter()
            .filter_map(|id| inner.docs.get(id).map(|d| (*id, d)))
            .filter(|(_, d)| f.matches(d))
            .collect();
        if matches.is_empty() {
            return Ok(None);
        }
        if let Some(opts) = sort {
            matches.sort_by(|a, b| opts.compare(a.1, b.1));
        }
        let (id, old_ref) = matches[0];
        let old = old_ref.clone();
        let mut new_doc = old.clone();
        u.apply(&mut new_doc, now, false)?;
        if new_doc != old {
            Self::reindex(&mut inner, id, &old, &new_doc)?;
            inner.docs.insert(id, new_doc.clone());
        }
        Ok(Some(if return_new { new_doc } else { old }))
    }

    /// Delete all documents matching the filter; returns how many.
    pub fn delete_many(&self, filter: &Value) -> Result<usize> {
        let _t = self.profiler.start(&self.name, OpKind::Delete);
        let f = Filter::parse(filter)?;
        let mut inner = self.inner.write();
        let ids: Vec<DocId> = self
            .candidate_ids(&inner, &f)
            .into_iter()
            .filter(|id| inner.docs.get(id).map(|d| f.matches(d)).unwrap_or(false))
            .collect();
        for id in &ids {
            if let Some(doc) = inner.docs.remove(id) {
                let idv = doc.get("_id").cloned().unwrap_or(Value::Null);
                inner.by_id.remove(&OrderedValue(idv));
                for ix in &mut inner.indexes {
                    ix.remove(*id, &doc);
                }
            }
        }
        Ok(ids.len())
    }

    /// Delete the first matching document. Returns true if one was removed.
    pub fn delete_one(&self, filter: &Value) -> Result<bool> {
        let f = Filter::parse(filter)?;
        let mut inner = self.inner.write();
        let ids = self.candidate_ids(&inner, &f);
        for id in ids {
            let matched = inner.docs.get(&id).map(|d| f.matches(d)).unwrap_or(false);
            if matched {
                let Some(doc) = inner.docs.remove(&id) else {
                    continue;
                };
                let idv = doc.get("_id").cloned().unwrap_or(Value::Null);
                inner.by_id.remove(&OrderedValue(idv));
                for ix in &mut inner.indexes {
                    ix.remove(id, &doc);
                }
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Create a secondary index on `path`. Existing documents are indexed
    /// immediately; fails atomically on unique violation.
    pub fn create_index(&self, path: &str, unique: bool) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.indexes.iter().any(|ix| ix.path == path) {
            return Ok(());
        }
        let mut ix = Index::new(path, unique);
        for (id, doc) in &inner.docs {
            ix.insert(*id, doc)?;
        }
        inner.indexes.push(ix);
        Ok(())
    }

    /// Drop the index on `path`.
    pub fn drop_index(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let before = inner.indexes.len();
        inner.indexes.retain(|ix| ix.path != path);
        if inner.indexes.len() == before {
            return Err(StoreError::NoSuchIndex(path.into()));
        }
        Ok(())
    }

    /// Paths of the existing indexes.
    pub fn index_paths(&self) -> Vec<String> {
        self.inner
            .read()
            .indexes
            .iter()
            .map(|ix| ix.path.clone())
            .collect()
    }

    /// Snapshot every document (used by MapReduce and persistence).
    pub fn dump(&self) -> Vec<Value> {
        self.inner.read().docs.values().cloned().collect()
    }

    /// Remove everything.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.docs.clear();
        inner.by_id.clear();
        let paths: Vec<(String, bool)> = inner
            .indexes
            .iter()
            .map(|ix| (ix.path.clone(), ix.unique))
            .collect();
        inner.indexes = paths.into_iter().map(|(p, u)| Index::new(p, u)).collect();
    }

    /// Query-plan diagnostics, like MongoDB's `explain()`: which access
    /// path a filter would use and how many documents it must examine.
    pub fn explain(&self, filter: &Value) -> Result<Value> {
        let f = Filter::parse(filter)?;
        let inner = self.inner.read();
        let (plan, index, candidates) = if let Some(id_val) = f.equality_on("_id") {
            (
                "ID_LOOKUP",
                Some("_id".to_string()),
                usize::from(inner.by_id.contains_key(&OrderedValue(id_val.clone()))),
            )
        } else if let Some((path, hits)) = inner.indexes.iter().find_map(|ix| {
            f.equality_on(&ix.path)
                .map(|v| (ix.path.clone(), ix.lookup_eq(v).len()))
        }) {
            ("INDEX_EQ", Some(path), hits)
        } else if let Some((path, hits)) = inner.indexes.iter().find_map(|ix| {
            f.range_on(&ix.path).map(|(lo, loi, hi, hii)| {
                (ix.path.clone(), ix.lookup_range(lo, loi, hi, hii).len())
            })
        }) {
            ("INDEX_RANGE", Some(path), hits)
        } else {
            ("COLLSCAN", None, inner.docs.len())
        };
        Ok(serde_json::json!({
            "collection": self.name,
            "plan": plan,
            "index": index,
            "docs_examined": candidates,
            "docs_total": inner.docs.len(),
            "filter_paths": f.touched_paths(),
        }))
    }

    // ---- internals ----

    /// Ids worth checking for `f`: narrowed via the best applicable index,
    /// otherwise every document (full collection scan).
    fn candidate_ids(&self, inner: &Inner, f: &Filter) -> Vec<DocId> {
        if let Some(id_val) = f.equality_on("_id") {
            return inner
                .by_id
                .get(&OrderedValue(id_val.clone()))
                .map(|id| vec![*id])
                .unwrap_or_default();
        }
        for ix in &inner.indexes {
            if let Some(v) = f.equality_on(&ix.path) {
                return ix.lookup_eq(v);
            }
        }
        for ix in &inner.indexes {
            if let Some((lo, loi, hi, hii)) = f.range_on(&ix.path) {
                return ix.lookup_range(lo, loi, hi, hii);
            }
        }
        inner.docs.keys().copied().collect()
    }

    fn scan(&self, inner: &Inner, f: &Filter) -> Vec<Value> {
        self.candidate_ids(inner, f)
            .into_iter()
            .filter_map(|id| inner.docs.get(&id))
            .filter(|d| f.matches(d))
            .cloned()
            .collect()
    }

    fn reindex(inner: &mut Inner, id: DocId, old: &Value, new: &Value) -> Result<()> {
        // Check unique constraints first so a failed update leaves the
        // indexes untouched; the document's own old entries don't count.
        for ix in &inner.indexes {
            ix.check_unique(id, new, Some(id))?;
        }
        for ix in &mut inner.indexes {
            ix.remove(id, old);
            ix.insert(id, new)?;
        }
        // _id changes are not permitted via update; keep by_id consistent.
        let old_id = old.get("_id").cloned().unwrap_or(Value::Null);
        let new_id = new.get("_id").cloned().unwrap_or(Value::Null);
        if old_id != new_id {
            inner.by_id.remove(&OrderedValue(old_id));
            inner.by_id.insert(OrderedValue(new_id), id);
        }
        Ok(())
    }
}

/// For upserts, seed the new document from the filter's equality fields
/// (MongoDB does the same).
fn filter_equality_seed(f: &Filter) -> Value {
    let mut doc = json!({});
    for (path, preds) in &f.fields {
        for p in preds {
            if let crate::query::Predicate::Eq(v) = p {
                let _ = crate::value::set_path(&mut doc, path, v.clone());
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::Profiler;

    fn coll() -> Collection {
        Collection::new(
            "test",
            Arc::new(Profiler::new(16_384)),
            Arc::new(OrderedRwLock::new(LockRank::Clock, 0.0)),
        )
    }

    #[test]
    fn insert_assigns_id() {
        let c = coll();
        let id = c.insert_one(json!({"a": 1})).unwrap();
        assert!(id.as_str().unwrap().starts_with("oid"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_duplicate_id_rejected() {
        let c = coll();
        c.insert_one(json!({"_id": "x", "a": 1})).unwrap();
        assert!(matches!(
            c.insert_one(json!({"_id": "x", "a": 2})),
            Err(StoreError::DuplicateKey(_))
        ));
    }

    #[test]
    fn insert_non_object_rejected() {
        let c = coll();
        assert!(c.insert_one(json!([1, 2])).is_err());
        assert!(c.insert_one(json!(42)).is_err());
    }

    #[test]
    fn find_by_filter() {
        let c = coll();
        c.insert_many(vec![
            json!({"el": ["Li", "O"], "n": 10}),
            json!({"el": ["Fe", "O"], "n": 200}),
            json!({"el": ["Li", "Fe", "O"], "n": 150}),
        ])
        .unwrap();
        let hits = c
            .find(&json!({"el": {"$all": ["Li", "O"]}, "n": {"$lte": 150}}))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn find_one_and_get() {
        let c = coll();
        let id = c.insert_one(json!({"a": 1})).unwrap();
        assert!(c.find_one(&json!({"a": 1})).unwrap().is_some());
        assert!(c.find_one(&json!({"a": 2})).unwrap().is_none());
        assert_eq!(c.get(&id).unwrap()["a"], json!(1));
    }

    #[test]
    fn update_many_and_one() {
        let c = coll();
        c.insert_many(vec![
            json!({"s": "R"}),
            json!({"s": "R"}),
            json!({"s": "C"}),
        ])
        .unwrap();
        let r = c
            .update_many(&json!({"s": "R"}), &json!({"$set": {"s": "D"}}))
            .unwrap();
        assert_eq!((r.matched, r.modified), (2, 2));
        assert_eq!(c.count(&json!({"s": "D"})).unwrap(), 2);

        let r = c
            .update_one(&json!({"s": "D"}), &json!({"$set": {"s": "E"}}))
            .unwrap();
        assert_eq!((r.matched, r.modified), (1, 1));
    }

    #[test]
    fn update_no_change_counts_matched_only() {
        let c = coll();
        c.insert_one(json!({"a": 1})).unwrap();
        let r = c
            .update_many(&json!({"a": 1}), &json!({"$set": {"a": 1}}))
            .unwrap();
        assert_eq!((r.matched, r.modified), (1, 0));
    }

    #[test]
    fn upsert_inserts_with_filter_seed() {
        let c = coll();
        let r = c
            .upsert(&json!({"key": "k1"}), &json!({"$set": {"v": 10}}))
            .unwrap();
        assert!(r.upserted);
        let doc = c.find_one(&json!({"key": "k1"})).unwrap().unwrap();
        assert_eq!(doc["v"], json!(10));
        // Second upsert updates in place.
        let r = c
            .upsert(&json!({"key": "k1"}), &json!({"$set": {"v": 20}}))
            .unwrap();
        assert!(!r.upserted);
        assert_eq!(c.count(&json!({"key": "k1"})).unwrap(), 1);
    }

    #[test]
    fn find_one_and_update_claims_atomically() {
        let c = coll();
        c.insert_many(vec![
            json!({"state": "READY", "prio": 2}),
            json!({"state": "READY", "prio": 9}),
        ])
        .unwrap();
        let claimed = c
            .find_one_and_update(
                &json!({"state": "READY"}),
                &json!({"$set": {"state": "RUNNING"}}),
                Some(&FindOptions::all().sort_by("prio", crate::cursor::SortDir::Desc)),
                true,
            )
            .unwrap()
            .unwrap();
        assert_eq!(claimed["prio"], json!(9));
        assert_eq!(claimed["state"], json!("RUNNING"));
        assert_eq!(c.count(&json!({"state": "READY"})).unwrap(), 1);
    }

    #[test]
    fn find_one_and_update_none_when_no_match() {
        let c = coll();
        let r = c
            .find_one_and_update(&json!({"x": 1}), &json!({"$set": {"y": 2}}), None, true)
            .unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn delete() {
        let c = coll();
        c.insert_many(vec![json!({"a": 1}), json!({"a": 1}), json!({"a": 2})])
            .unwrap();
        assert_eq!(c.delete_many(&json!({"a": 1})).unwrap(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.delete_one(&json!({"a": 2})).unwrap());
        assert!(!c.delete_one(&json!({"a": 2})).unwrap());
    }

    #[test]
    fn index_accelerated_find_same_result() {
        let c = coll();
        for i in 0..100 {
            c.insert_one(json!({"n": i, "grp": i % 7})).unwrap();
        }
        let plain = c.find(&json!({"grp": 3})).unwrap();
        c.create_index("grp", false).unwrap();
        let indexed = c.find(&json!({"grp": 3})).unwrap();
        assert_eq!(plain.len(), indexed.len());

        let plain = c.find(&json!({"n": {"$gte": 20, "$lt": 30}})).unwrap();
        c.create_index("n", false).unwrap();
        let indexed = c.find(&json!({"n": {"$gte": 20, "$lt": 30}})).unwrap();
        assert_eq!(plain.len(), indexed.len());
        assert_eq!(indexed.len(), 10);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let c = coll();
        c.create_index("mps_id", true).unwrap();
        c.insert_one(json!({"mps_id": 1})).unwrap();
        assert!(c.insert_one(json!({"mps_id": 1})).is_err());
        assert_eq!(c.len(), 1);
        // Update into a conflict also rejected.
        c.insert_one(json!({"mps_id": 2})).unwrap();
        assert!(c
            .update_one(&json!({"mps_id": 2}), &json!({"$set": {"mps_id": 1}}))
            .is_err());
    }

    #[test]
    fn index_stays_consistent_through_updates_and_deletes() {
        let c = coll();
        c.create_index("k", false).unwrap();
        c.insert_one(json!({"_id": 1, "k": "a"})).unwrap();
        c.update_one(&json!({"_id": 1}), &json!({"$set": {"k": "b"}}))
            .unwrap();
        assert!(c.find(&json!({"k": "a"})).unwrap().is_empty());
        assert_eq!(c.find(&json!({"k": "b"})).unwrap().len(), 1);
        c.delete_many(&json!({"k": "b"})).unwrap();
        assert!(c.find(&json!({"k": "b"})).unwrap().is_empty());
    }

    #[test]
    fn distinct_values() {
        let c = coll();
        c.insert_many(vec![
            json!({"el": ["Li", "O"]}),
            json!({"el": ["Fe", "O"]}),
            json!({"el": ["Li"]}),
        ])
        .unwrap();
        let d = c.distinct("el", &json!({})).unwrap();
        assert_eq!(d, vec![json!("Fe"), json!("Li"), json!("O")]);
    }

    #[test]
    fn count_with_filter() {
        let c = coll();
        for i in 0..10 {
            c.insert_one(json!({ "n": i })).unwrap();
        }
        assert_eq!(c.count(&json!({})).unwrap(), 10);
        assert_eq!(c.count(&json!({"n": {"$lt": 5}})).unwrap(), 5);
    }

    #[test]
    fn explain_reports_access_path() {
        let c = coll();
        for i in 0..50 {
            c.insert_one(json!({"_id": format!("d{i}"), "grp": i % 5, "n": i}))
                .unwrap();
        }
        // Full scan without indexes.
        let e = c.explain(&json!({"grp": 3})).unwrap();
        assert_eq!(e["plan"], "COLLSCAN");
        assert_eq!(e["docs_examined"], 50);
        // Index equality.
        c.create_index("grp", false).unwrap();
        let e = c.explain(&json!({"grp": 3})).unwrap();
        assert_eq!(e["plan"], "INDEX_EQ");
        assert_eq!(e["index"], "grp");
        assert_eq!(e["docs_examined"], 10);
        // Index range.
        c.create_index("n", false).unwrap();
        let e = c.explain(&json!({"n": {"$gte": 40}})).unwrap();
        assert_eq!(e["plan"], "INDEX_RANGE");
        assert_eq!(e["docs_examined"], 10);
        // Id lookup beats everything.
        let e = c.explain(&json!({"_id": "d7"})).unwrap();
        assert_eq!(e["plan"], "ID_LOOKUP");
        assert_eq!(e["docs_examined"], 1);
    }

    #[test]
    fn clear_preserves_index_definitions() {
        let c = coll();
        c.create_index("k", false).unwrap();
        c.insert_one(json!({"k": 1})).unwrap();
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.index_paths(), vec!["k".to_string()]);
        c.insert_one(json!({"k": 2})).unwrap();
        assert_eq!(c.find(&json!({"k": 2})).unwrap().len(), 1);
    }
}
