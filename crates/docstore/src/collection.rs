//! Collections: thread-safe containers of documents with Mongo-style CRUD,
//! secondary indexes, and atomic find-and-modify (the primitive FireWorks
//! uses to claim queue entries without double-running jobs).

use crate::cursor::{CompiledProjection, FindOptions};
use crate::error::{Result, StoreError};
use crate::index::{DocId, Index};
use crate::profiler::{OpKind, Profiler};
use crate::query::{CompiledFilter, Filter};
use crate::update::Update;
use crate::value::{Docs, Document, OrderedValue};
use mp_exec::{Crossover, WorkPool};
use mp_sync::{LockRank, OrderedRwLock};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Instant;

/// Fewest documents a morsel may carry when a scan fans out: finer
/// morsels pay more in claim traffic than they earn in overlap.
const MORSEL_FLOOR: usize = 1024;

/// Seq-vs-parallel decision point for the match-evaluation scan family:
/// filter and fused filter+project scans here, the shard router's
/// segmented union, and parallel counting all share one cost model,
/// since all of them are dominated by `CompiledFilter::matches` per
/// candidate. Sequential scans feed the model; `decide` prices fan-out
/// against the pool's calibrated dispatch overhead (DESIGN §14).
pub(crate) static SCAN_CROSSOVER: Crossover = Crossover::new();

/// Outcome of an update call.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateResult {
    /// Documents that matched the filter.
    pub matched: usize,
    /// Documents actually modified.
    pub modified: usize,
    /// Whether an upsert inserted a new document.
    pub upserted: bool,
    /// `_id` the upsert-inserted document got (`None` unless `upserted`).
    /// Write-behind journaling re-logs the upsert as an insert of the
    /// materialized document, which needs the assigned id.
    pub upserted_id: Option<Value>,
}

/// Access-path kind a query plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Point lookup on the `_id` primary map.
    IdLookup,
    /// Equality probe on a secondary index.
    IndexEq,
    /// `$in` probe on a secondary index.
    IndexIn,
    /// Range probe on a secondary index.
    IndexRange,
    /// Full collection scan.
    Collscan,
}

impl PlanKind {
    /// Stable display name, as reported by `explain()`.
    pub fn name(self) -> &'static str {
        match self {
            PlanKind::IdLookup => "ID_LOOKUP",
            PlanKind::IndexEq => "INDEX_EQ",
            PlanKind::IndexIn => "INDEX_IN",
            PlanKind::IndexRange => "INDEX_RANGE",
            PlanKind::Collscan => "COLLSCAN",
        }
    }

    /// Profiler counter bumped when a query executes via this kind.
    pub fn counter(self) -> &'static str {
        match self {
            PlanKind::IdLookup => "plan.id_lookup",
            PlanKind::IndexEq => "plan.index_eq",
            PlanKind::IndexIn => "plan.index_in",
            PlanKind::IndexRange => "plan.index_range",
            PlanKind::Collscan => "plan.collscan",
        }
    }

    /// Tie-break when two plans estimate the same cost: equality probes
    /// beat `$in` beat ranges beat a full scan.
    fn preference(self) -> u8 {
        match self {
            PlanKind::IdLookup => 0,
            PlanKind::IndexEq => 1,
            PlanKind::IndexIn => 2,
            PlanKind::IndexRange => 3,
            PlanKind::Collscan => 4,
        }
    }
}

/// A costed access path. `explain()` reports the chosen plan plus every
/// alternative considered; `Collection::find`/`count` execute exactly
/// the plan this planner chooses, so the two always agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Access-path kind.
    pub kind: PlanKind,
    /// Index path driving the plan (`None` for a full scan).
    pub index: Option<String>,
    /// Estimated documents the plan must examine.
    pub cost: usize,
}

struct Inner {
    /// Documents are shared-ownership: readers clone the `Arc` (a pointer
    /// bump) and never the document. Writers copy-on-write — clone the
    /// JSON once, mutate the copy, swap the `Arc` in — so any snapshot a
    /// reader took stays exactly what it was when the lock was released.
    docs: BTreeMap<DocId, Arc<Document>>,
    by_id: BTreeMap<OrderedValue, DocId>,
    indexes: Vec<Index>,
}

/// A named collection of JSON documents.
pub struct Collection {
    name: String,
    inner: OrderedRwLock<Inner>,
    next_id: AtomicU64,
    /// Generation counter: bumped on every successful mutation. Query
    /// caches key their entries to a generation and drop them when the
    /// collection has moved on (see `mp_exec::QueryCache`).
    version: AtomicU64,
    profiler: Arc<Profiler>,
    /// Simulated clock (seconds) used by `$currentDate`; shared with the DB.
    clock: Arc<OrderedRwLock<f64>>,
}

impl Collection {
    pub(crate) fn new(name: &str, profiler: Arc<Profiler>, clock: Arc<OrderedRwLock<f64>>) -> Self {
        Collection {
            name: name.to_string(),
            inner: OrderedRwLock::new(
                LockRank::Collection,
                Inner {
                    docs: BTreeMap::new(),
                    by_id: BTreeMap::new(),
                    indexes: Vec::new(),
                },
            ),
            next_id: AtomicU64::new(1),
            version: AtomicU64::new(0),
            profiler,
            clock,
        }
    }

    /// Current write generation. Any successful mutation makes this
    /// strictly greater than every previously observed value.
    pub fn version(&self) -> u64 {
        self.version.load(AtomicOrdering::Acquire)
    }

    pub(crate) fn bump_version(&self) {
        self.version.fetch_add(1, AtomicOrdering::AcqRel);
    }

    /// Raise the generation to at least `floor`. A database re-creating
    /// a dropped collection seeds the successor past every generation
    /// the predecessor ever published, so `(name, generation)` cache
    /// keys can never alias across the drop.
    pub(crate) fn set_version_floor(&self, floor: u64) {
        self.version.fetch_max(floor, AtomicOrdering::AcqRel);
    }

    /// Collection name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.inner.read().docs.len()
    }

    /// True if the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn now(&self) -> f64 {
        *self.clock.read()
    }

    /// Insert one document. A missing `_id` is assigned automatically.
    /// Returns the document's `_id`.
    pub fn insert_one(&self, mut doc: Value) -> Result<Value> {
        let _t = self.profiler.start(&self.name, OpKind::Insert);
        if !doc.is_object() {
            return Err(StoreError::InvalidDocument(
                "document must be a JSON object".into(),
            ));
        }
        let mut inner = self.inner.write();
        let id_num = self.next_id.fetch_add(1, AtomicOrdering::Relaxed);
        let id_val = match doc.get("_id") {
            Some(v) => v.clone(),
            None => {
                let v = json!(format!("oid{:012x}", id_num));
                match doc.as_object_mut() {
                    Some(obj) => obj.insert("_id".into(), v.clone()),
                    None => {
                        return Err(StoreError::InvalidDocument(
                            "document must be a JSON object".into(),
                        ))
                    }
                };
                v
            }
        };
        if inner.by_id.contains_key(&OrderedValue(id_val.clone())) {
            return Err(StoreError::DuplicateKey(format!("_id {id_val}")));
        }
        // Unique-index check before any mutation.
        for ix in &inner.indexes {
            ix.check_unique(id_num, &doc, None)?;
        }
        for ix in &mut inner.indexes {
            ix.insert(id_num, &doc)?;
        }
        inner.by_id.insert(OrderedValue(id_val.clone()), id_num);
        inner.docs.insert(id_num, Arc::new(doc));
        self.bump_version();
        Ok(id_val)
    }

    /// Insert many documents; stops at the first error.
    pub fn insert_many(&self, docs: Vec<Value>) -> Result<Vec<Value>> {
        docs.into_iter().map(|d| self.insert_one(d)).collect()
    }

    /// Reserve a fresh `_id` from the collection's id sequence without
    /// inserting anything. The write-ahead seam
    /// ([`crate::durable::DurableDatabase`]) assigns ids *before*
    /// journaling so the WAL records the document the store will hold;
    /// the burned sequence slot is harmless (ids only need uniqueness).
    pub fn reserve_id(&self) -> Value {
        let id_num = self.next_id.fetch_add(1, AtomicOrdering::Relaxed);
        json!(format!("oid{:012x}", id_num))
    }

    /// Materialize the document an upsert-insert would create from
    /// `filter`'s equality fields plus the applied `update` — without
    /// touching the collection. The write-ahead seam journals this
    /// materialized form so replay does not re-run the upsert decision.
    pub fn materialize_upsert(&self, filter: &Value, update: &Value) -> Result<Value> {
        let f = Filter::parse(filter)?;
        let u = Update::parse(update)?;
        let mut seed = filter_equality_seed(&f);
        u.apply(&mut seed, self.now(), true)?;
        Ok(seed)
    }

    /// Find documents matching a JSON filter with default options.
    pub fn find(&self, filter: &Value) -> Result<Docs> {
        self.find_with(filter, &FindOptions::all())
    }

    /// Find with sort/skip/limit/projection.
    ///
    /// Returns shared documents ([`Docs`]): no deep copy is made on the
    /// way out. The options are compiled once per query — sort keys and
    /// projection paths are pre-split before the first document is
    /// touched — and a projection materializes only the projected fields
    /// from the borrowed documents (in parallel chunks for large result
    /// sets).
    ///
    /// An unsorted projected find takes the pushdown path: each matching
    /// document is projected in the same pass that matched it (see
    /// [`filter_project_matches`]), and a skip/limit window ends the scan
    /// as soon as it is full. A sorted find must keep the full source
    /// documents until after ordering (the sort keys need not be
    /// projected fields), so it projects the ordered window afterwards.
    pub fn find_with(&self, filter: &Value, opts: &FindOptions) -> Result<Docs> {
        let _t = self.profiler.start(&self.name, OpKind::Find);
        let cf = Filter::parse(filter)?.compile();
        let copts = opts.compile();
        if let (false, Some(proj)) = (copts.has_sort(), copts.projection()) {
            let candidates = self.snapshot(&cf);
            return Ok(filter_project_matches(
                WorkPool::global(),
                candidates,
                &cf,
                proj,
                copts.skip(),
                copts.limit(),
            ));
        }
        let mut out = self.scan(&cf);
        copts.apply_order(&mut out);
        if let Some(proj) = copts.projection() {
            out = project_matches(WorkPool::global(), &out, proj);
        }
        Ok(out)
    }

    /// First matching document, if any.
    pub fn find_one(&self, filter: &Value) -> Result<Option<Arc<Document>>> {
        Ok(self.find_with(filter, &FindOptions::all().limit(1))?.pop())
    }

    /// Fetch by `_id` directly (a shared snapshot, not a copy).
    pub fn get(&self, id: &Value) -> Option<Arc<Document>> {
        let inner = self.inner.read();
        let did = *inner.by_id.get(&OrderedValue(id.clone()))?;
        inner.docs.get(&did).cloned()
    }

    /// Count documents matching the filter.
    pub fn count(&self, filter: &Value) -> Result<usize> {
        let _t = self.profiler.start(&self.name, OpKind::Count);
        let cf = Filter::parse(filter)?.compile();
        Ok(self.count_exec(&cf))
    }

    /// Find with a pre-compiled filter: the lean path the shard router's
    /// scatter-gather uses, skipping the per-shard filter re-parse (and
    /// re-compile) and operation-sampling overhead of [`Collection::find`].
    pub fn find_filter(&self, cf: &CompiledFilter) -> Docs {
        self.scan(cf)
    }

    /// Count with a pre-compiled filter (lean scatter path, see
    /// [`Collection::find_filter`]).
    pub fn count_filter(&self, cf: &CompiledFilter) -> usize {
        self.count_exec(cf)
    }

    /// Route a count seq-vs-parallel: small (or unpriced) candidate sets
    /// count under the read lock with no snapshot at all; when the
    /// crossover predicts fan-out pays, the candidates are snapshotted
    /// (releasing the lock) and match-counted in morsels on the pool.
    fn count_exec(&self, cf: &CompiledFilter) -> usize {
        let pool = WorkPool::global();
        let estimate = {
            let inner = self.inner.read();
            if cf.is_empty() {
                return inner.docs.len();
            }
            Self::plan_query(&inner, cf).0.cost
        };
        if !SCAN_CROSSOVER.decide(pool, estimate).parallel {
            let t = Instant::now();
            let count = {
                let inner = self.inner.read();
                self.count_in(&inner, cf)
            };
            SCAN_CROSSOVER.record_seq(estimate, t.elapsed());
            return count;
        }
        let candidates = self.snapshot(cf);
        let per_morsel = pool.chunk_size(candidates.len(), MORSEL_FLOOR);
        pool.scatter_morsels(&candidates, per_morsel, |morsel| {
            morsel.iter().filter(|d| cf.matches(d)).count()
        })
        .into_iter()
        .sum()
    }

    /// Lean sequential scan for the shard router: plan and match *under*
    /// the read lock, appending matches straight to `out` — no candidate
    /// snapshot is ever materialized, so a low-selectivity filter clones
    /// one `Arc` per **match** instead of one per candidate. The price is
    /// that writers wait behind the match pass, which is why the router
    /// only takes this arm when the crossover predicts sequential
    /// execution (fan-out wouldn't pay) and latency is the priority.
    pub(crate) fn filter_into(&self, cf: &CompiledFilter, out: &mut Docs) {
        let t = Instant::now();
        let examined;
        {
            let inner = self.inner.read();
            let (plan, _) = Self::plan_query(&inner, cf);
            self.profiler.bump(plan.kind.counter());
            match plan.kind {
                PlanKind::Collscan => {
                    examined = inner.docs.len();
                    out.extend(inner.docs.values().filter(|d| cf.matches(d)).cloned());
                }
                _ => {
                    let ids = Self::plan_candidates(&inner, cf, &plan);
                    examined = ids.len();
                    out.extend(
                        ids.into_iter().filter_map(|id| {
                            inner.docs.get(&id).filter(|d| cf.matches(d)).cloned()
                        }),
                    );
                }
            }
        }
        SCAN_CROSSOVER.record_seq(examined, t.elapsed());
    }

    /// Distinct values at `path` among documents matching `filter`.
    pub fn distinct(&self, path: &str, filter: &Value) -> Result<Vec<Value>> {
        let _t = self.profiler.start(&self.name, OpKind::Find);
        let cf = Filter::parse(filter)?.compile();
        let mut set: BTreeMap<OrderedValue, ()> = BTreeMap::new();
        for doc in self.scan(&cf) {
            for v in crate::value::get_path_multi(&doc, path) {
                match v {
                    Value::Array(a) => {
                        for e in a {
                            set.insert(OrderedValue(e.clone()), ());
                        }
                    }
                    other => {
                        set.insert(OrderedValue(other.clone()), ());
                    }
                }
            }
        }
        Ok(set.into_keys().map(|k| k.0).collect())
    }

    /// Update all documents matching `filter`.
    pub fn update_many(&self, filter: &Value, update: &Value) -> Result<UpdateResult> {
        self.update_inner(filter, update, false, false)
    }

    /// Update the first matching document.
    pub fn update_one(&self, filter: &Value, update: &Value) -> Result<UpdateResult> {
        self.update_inner(filter, update, true, false)
    }

    /// Update one; insert a new document from the update if none matched.
    // mp-lint: allow(E002) — in-memory convenience only: the durable
    // surface decomposes upserts via materialize_upsert into a resolved
    // insert-or-update op so the WAL records the exact document, and
    // never calls this combined primitive.
    pub fn upsert(&self, filter: &Value, update: &Value) -> Result<UpdateResult> {
        self.update_inner(filter, update, true, true)
    }

    fn update_inner(
        &self,
        filter: &Value,
        update: &Value,
        only_one: bool,
        do_upsert: bool,
    ) -> Result<UpdateResult> {
        let _t = self.profiler.start(&self.name, OpKind::Update);
        let f = Filter::parse(filter)?;
        let cf = f.compile();
        let u = Update::parse(update)?;
        let now = self.now();
        let mut inner = self.inner.write();
        let ids = self.candidate_ids(&inner, &cf);
        let mut res = UpdateResult::default();
        for id in ids {
            let Some(old) = inner.docs.get(&id).filter(|d| cf.matches(d)).cloned() else {
                continue;
            };
            res.matched += 1;
            // Copy-on-write: readers may hold the old Arc, so mutate a
            // fresh copy and swap it in rather than writing through.
            let mut new_doc = (*old).clone();
            u.apply(&mut new_doc, now, false)?;
            if new_doc != *old {
                Self::reindex(&mut inner, id, &old, &new_doc)?;
                inner.docs.insert(id, Arc::new(new_doc));
                res.modified += 1;
            }
            if only_one {
                break;
            }
        }
        if res.modified > 0 {
            self.bump_version();
        }
        if res.matched == 0 && do_upsert {
            drop(inner);
            let mut seed = filter_equality_seed(&f);
            u.apply(&mut seed, now, true)?;
            res.upserted_id = Some(self.insert_one(seed)?);
            res.upserted = true;
        }
        Ok(res)
    }

    /// Atomically find one matching document, apply `update` to it, and
    /// return it. `return_new` picks the post-update document. When `sort`
    /// is given, the first document under that order is taken — this is
    /// the queue-pop primitive.
    pub fn find_one_and_update(
        &self,
        filter: &Value,
        update: &Value,
        sort: Option<&FindOptions>,
        return_new: bool,
    ) -> Result<Option<Arc<Document>>> {
        let _t = self.profiler.start(&self.name, OpKind::FindAndModify);
        let cf = Filter::parse(filter)?.compile();
        let u = Update::parse(update)?;
        let now = self.now();
        let mut inner = self.inner.write();
        let ids = self.candidate_ids(&inner, &cf);
        let mut matches: Vec<(DocId, &Arc<Document>)> = ids
            .iter()
            .filter_map(|id| inner.docs.get(id).map(|d| (*id, d)))
            .filter(|(_, d)| cf.matches(d))
            .collect();
        if matches.is_empty() {
            return Ok(None);
        }
        if let Some(opts) = sort {
            let copts = opts.compile();
            matches.sort_by(|a, b| copts.cmp_docs(a.1, b.1));
        }
        let (id, old_ref) = matches[0];
        let old = Arc::clone(old_ref);
        let mut new_doc = (*old).clone();
        u.apply(&mut new_doc, now, false)?;
        if new_doc != *old {
            let new_arc = Arc::new(new_doc);
            Self::reindex(&mut inner, id, &old, &new_arc)?;
            inner.docs.insert(id, Arc::clone(&new_arc));
            self.bump_version();
            return Ok(Some(if return_new { new_arc } else { old }));
        }
        Ok(Some(old))
    }

    /// Delete all documents matching the filter; returns how many.
    pub fn delete_many(&self, filter: &Value) -> Result<usize> {
        let _t = self.profiler.start(&self.name, OpKind::Delete);
        let cf = Filter::parse(filter)?.compile();
        let mut inner = self.inner.write();
        let ids: Vec<DocId> = self
            .candidate_ids(&inner, &cf)
            .into_iter()
            .filter(|id| inner.docs.get(id).map(|d| cf.matches(d)).unwrap_or(false))
            .collect();
        for id in &ids {
            if let Some(doc) = inner.docs.remove(id) {
                let idv = doc.get("_id").cloned().unwrap_or(Value::Null);
                inner.by_id.remove(&OrderedValue(idv));
                for ix in &mut inner.indexes {
                    ix.remove(*id, &doc);
                }
            }
        }
        if !ids.is_empty() {
            self.bump_version();
        }
        Ok(ids.len())
    }

    /// Delete the first matching document. Returns true if one was removed.
    pub fn delete_one(&self, filter: &Value) -> Result<bool> {
        let cf = Filter::parse(filter)?.compile();
        let mut inner = self.inner.write();
        let ids = self.candidate_ids(&inner, &cf);
        for id in ids {
            let matched = inner.docs.get(&id).map(|d| cf.matches(d)).unwrap_or(false);
            if matched {
                let Some(doc) = inner.docs.remove(&id) else {
                    continue;
                };
                let idv = doc.get("_id").cloned().unwrap_or(Value::Null);
                inner.by_id.remove(&OrderedValue(idv));
                for ix in &mut inner.indexes {
                    ix.remove(id, &doc);
                }
                self.bump_version();
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Create a secondary index on `path`. Existing documents are indexed
    /// immediately; fails atomically on unique violation.
    pub fn create_index(&self, path: &str, unique: bool) -> Result<()> {
        let mut inner = self.inner.write();
        if inner.indexes.iter().any(|ix| ix.path == path) {
            return Ok(());
        }
        let mut ix = Index::new(path, unique);
        for (id, doc) in &inner.docs {
            ix.insert(*id, doc)?;
        }
        inner.indexes.push(ix);
        // Plans can change when an index appears, so cached results keyed
        // to the old generation must not outlive it.
        self.bump_version();
        Ok(())
    }

    /// Drop the index on `path`.
    pub fn drop_index(&self, path: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let before = inner.indexes.len();
        inner.indexes.retain(|ix| ix.path != path);
        if inner.indexes.len() == before {
            return Err(StoreError::NoSuchIndex(path.into()));
        }
        self.bump_version();
        Ok(())
    }

    /// `(path, unique)` of the existing indexes, in creation order.
    /// Snapshots persist these so recovery rebuilds the same plans and
    /// unique constraints, not just the same documents.
    pub fn index_specs(&self) -> Vec<(String, bool)> {
        self.inner
            .read()
            .indexes
            .iter()
            .map(|ix| (ix.path.clone(), ix.unique))
            .collect()
    }

    /// Paths of the existing indexes.
    pub fn index_paths(&self) -> Vec<String> {
        self.inner
            .read()
            .indexes
            .iter()
            .map(|ix| ix.path.clone())
            .collect()
    }

    /// Snapshot every document (used by MapReduce and persistence). The
    /// snapshot shares ownership with the store: cost is one `Arc` bump
    /// per document, not a deep copy.
    pub fn dump(&self) -> Docs {
        self.inner.read().docs.values().cloned().collect()
    }

    /// Remove everything.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.docs.clear();
        inner.by_id.clear();
        let paths: Vec<(String, bool)> = inner
            .indexes
            .iter()
            .map(|ix| (ix.path.clone(), ix.unique))
            .collect();
        inner.indexes = paths.into_iter().map(|(p, u)| Index::new(p, u)).collect();
        self.bump_version();
    }

    /// Query-plan diagnostics, like MongoDB's `explain()`: which access
    /// path a filter uses, how many documents it must examine, and every
    /// alternative plan the cost-based planner considered. The reported
    /// plan is the one `find`/`count` actually execute (both call the
    /// same planner).
    pub fn explain(&self, filter: &Value) -> Result<Value> {
        let cf = Filter::parse(filter)?.compile();
        let (plan, considered, docs_examined, docs_total) = {
            let inner = self.inner.read();
            let (plan, considered) = Self::plan_query(&inner, &cf);
            let docs_examined = match plan.kind {
                PlanKind::Collscan => inner.docs.len(),
                _ => Self::plan_candidates(&inner, &cf, &plan).len(),
            };
            (plan, considered, docs_examined, inner.docs.len())
        };
        // Priced after the guard is dropped: the crossover may calibrate
        // the pool's dispatch overhead on first use, and a scatter must
        // never run under a collection lock.
        let exec = SCAN_CROSSOVER.decide(WorkPool::global(), docs_examined);
        let considered: Vec<Value> = considered
            .iter()
            .map(|p| {
                json!({
                    "plan": p.kind.name(),
                    "index": p.index,
                    "cost": p.cost,
                })
            })
            .collect();
        Ok(serde_json::json!({
            "collection": self.name,
            "plan": plan.kind.name(),
            "index": plan.index,
            "docs_examined": docs_examined,
            "docs_total": docs_total,
            "filter_paths": cf.touched_paths(),
            "considered": considered,
            "exec": {
                "mode": if exec.parallel { "parallel_morsels" } else { "sequential" },
                "slots": exec.slots,
                "per_item_ns": exec.per_item_ns,
                "dispatch_ns": exec.dispatch_ns,
                "parallel_threshold_items": if exec.threshold_items == usize::MAX {
                    Value::Null
                } else {
                    json!(exec.threshold_items)
                },
            },
        }))
    }

    /// Estimated documents the chosen plan must examine, without
    /// materializing a candidate set — the shard router sums this across
    /// shards to price a scatter before paying for any snapshot.
    pub(crate) fn estimate_cost(&self, cf: &CompiledFilter) -> usize {
        let inner = self.inner.read();
        Self::plan_query(&inner, cf).0.cost
    }

    /// The plan `find`/`count` would execute for `filter` right now.
    pub fn plan_for(&self, filter: &Value) -> Result<QueryPlan> {
        let cf = Filter::parse(filter)?.compile();
        let inner = self.inner.read();
        Ok(Self::plan_query(&inner, &cf).0)
    }

    // ---- internals ----

    /// Cost-based plan selection: cost every applicable access path
    /// (index estimates are set-size counts, no candidate
    /// materialization) and keep the cheapest; ties prefer equality over
    /// `$in` over range over scan, then earlier-created indexes. Returns
    /// the winner plus everything considered, for `explain()`.
    fn plan_query(inner: &Inner, f: &CompiledFilter) -> (QueryPlan, Vec<QueryPlan>) {
        if let Some(id_val) = f.equality_on("_id") {
            let plan = QueryPlan {
                kind: PlanKind::IdLookup,
                index: Some("_id".to_string()),
                cost: usize::from(inner.by_id.contains_key(&OrderedValue(id_val.clone()))),
            };
            return (plan.clone(), vec![plan]);
        }
        let mut considered: Vec<QueryPlan> = Vec::new();
        for ix in &inner.indexes {
            if let Some(v) = f.equality_on(&ix.path) {
                considered.push(QueryPlan {
                    kind: PlanKind::IndexEq,
                    index: Some(ix.path.clone()),
                    cost: ix.estimate_eq(v),
                });
            }
            if let Some(vs) = f.in_on(&ix.path) {
                considered.push(QueryPlan {
                    kind: PlanKind::IndexIn,
                    index: Some(ix.path.clone()),
                    cost: ix.estimate_in(vs),
                });
            }
            if let Some((lo, loi, hi, hii)) = f.range_on(&ix.path) {
                considered.push(QueryPlan {
                    kind: PlanKind::IndexRange,
                    index: Some(ix.path.clone()),
                    cost: ix.estimate_range(lo, loi, hi, hii),
                });
            }
        }
        considered.push(QueryPlan {
            kind: PlanKind::Collscan,
            index: None,
            cost: inner.docs.len(),
        });
        let best = considered
            .iter()
            .min_by_key(|p| (p.cost, p.kind.preference()))
            .cloned()
            // mp-flow: allow(R001) — `considered` is non-empty: COLLSCAN is pushed unconditionally just above
            .expect("COLLSCAN is always a considered plan");
        (best, considered)
    }

    /// Materialize the candidate ids for an already-chosen plan.
    fn plan_candidates(inner: &Inner, f: &CompiledFilter, plan: &QueryPlan) -> Vec<DocId> {
        if plan.kind == PlanKind::IdLookup {
            let Some(id_val) = f.equality_on("_id") else {
                return Vec::new();
            };
            return inner
                .by_id
                .get(&OrderedValue(id_val.clone()))
                .map(|id| vec![*id])
                .unwrap_or_default();
        }
        if plan.kind == PlanKind::Collscan {
            return inner.docs.keys().copied().collect();
        }
        let Some(ix) = plan
            .index
            .as_deref()
            .and_then(|p| inner.indexes.iter().find(|ix| ix.path == p))
        else {
            return Vec::new();
        };
        match plan.kind {
            PlanKind::IndexEq => f
                .equality_on(&ix.path)
                .map(|v| ix.lookup_eq(v))
                .unwrap_or_default(),
            PlanKind::IndexIn => f
                .in_on(&ix.path)
                .map(|vs| ix.lookup_in(vs))
                .unwrap_or_default(),
            PlanKind::IndexRange => f
                .range_on(&ix.path)
                .map(|(lo, loi, hi, hii)| ix.lookup_range(lo, loi, hi, hii))
                .unwrap_or_default(),
            // mp-flow: allow(R001) — both variants return early before the index match
            PlanKind::IdLookup | PlanKind::Collscan => unreachable!("handled above"),
        }
    }

    /// Ids worth checking for `cf`, via the planner's chosen access path
    /// (used by the update/delete paths, which need ids, not documents).
    fn candidate_ids(&self, inner: &Inner, cf: &CompiledFilter) -> Vec<DocId> {
        let (plan, _) = Self::plan_query(inner, cf);
        Self::plan_candidates(inner, cf, &plan)
    }

    /// Plan, then execute as a *snapshot scan*: the collection lock is
    /// held only long enough to choose the plan and clone the `Arc`s of
    /// the candidate set; match evaluation (in parallel chunks when the
    /// set is large and the global pool has more than one slot) runs
    /// lock-free on the released snapshot, so writers are never blocked
    /// behind a large scan. A COLLSCAN walks document values directly
    /// instead of materializing every id and re-probing the tree per id.
    fn scan(&self, cf: &CompiledFilter) -> Docs {
        let candidates = self.snapshot(cf);
        filter_matches(WorkPool::global(), candidates, cf)
    }

    /// The snapshot half of [`Collection::scan`]: choose a plan and clone
    /// the `Arc`s of its candidate set under the read lock, releasing it
    /// before any match evaluation. The shard router uses this directly
    /// so one scatter can span every shard's candidates at once instead
    /// of dispatching one opaque job per shard.
    pub(crate) fn snapshot(&self, cf: &CompiledFilter) -> Docs {
        let inner = self.inner.read();
        let (plan, _) = Self::plan_query(&inner, cf);
        self.profiler.bump(plan.kind.counter());
        match plan.kind {
            PlanKind::Collscan => inner.docs.values().cloned().collect(),
            _ => Self::plan_candidates(&inner, cf, &plan)
                .into_iter()
                .filter_map(|id| inner.docs.get(&id).cloned())
                .collect(),
        }
    }

    /// Counting twin of `scan`: same planner; counts under the read lock
    /// (no snapshot needed — nothing is handed out).
    fn count_in(&self, inner: &Inner, cf: &CompiledFilter) -> usize {
        let (plan, _) = Self::plan_query(inner, cf);
        self.profiler.bump(plan.kind.counter());
        match plan.kind {
            PlanKind::Collscan => inner.docs.values().filter(|d| cf.matches(d)).count(),
            _ => Self::plan_candidates(inner, cf, &plan)
                .into_iter()
                .filter(|id| inner.docs.get(id).map(|d| cf.matches(d)).unwrap_or(false))
                .count(),
        }
    }

    fn reindex(inner: &mut Inner, id: DocId, old: &Value, new: &Value) -> Result<()> {
        // Check unique constraints first so a failed update leaves the
        // indexes untouched; the document's own old entries don't count.
        for ix in &inner.indexes {
            ix.check_unique(id, new, Some(id))?;
        }
        for ix in &mut inner.indexes {
            ix.remove(id, old);
            ix.insert(id, new)?;
        }
        // _id changes are not permitted via update; keep by_id consistent.
        let old_id = old.get("_id").cloned().unwrap_or(Value::Null);
        let new_id = new.get("_id").cloned().unwrap_or(Value::Null);
        if old_id != new_id {
            inner.by_id.remove(&OrderedValue(old_id));
            inner.by_id.insert(OrderedValue(new_id), id);
        }
        Ok(())
    }
}

/// Match-filter a snapshot of candidate documents. When the crossover
/// model predicts fan-out pays (see [`SCAN_CROSSOVER`]), the snapshot is
/// cut into morsels of a few chunks per pool slot (see
/// [`WorkPool::chunk_size`]) and workers claim them off the shared slice
/// — morsel results land in pre-allocated slots in morsel order, so the
/// output order is identical to the sequential path by construction.
/// A match retains the `Arc` (pointer bump) — the documents themselves
/// are never copied. Sequential runs feed their observed per-item cost
/// back into the crossover model.
pub(crate) fn filter_matches(pool: &WorkPool, docs: Docs, cf: &CompiledFilter) -> Docs {
    if SCAN_CROSSOVER.decide(pool, docs.len()).parallel {
        let per_morsel = pool.chunk_size(docs.len(), MORSEL_FLOOR);
        let parts = pool.scatter_morsels(&docs, per_morsel, |morsel| {
            morsel
                .iter()
                .filter(|d| cf.matches(d))
                .cloned()
                .collect::<Docs>()
        });
        parts.into_iter().flatten().collect()
    } else {
        let n = docs.len();
        let t = Instant::now();
        let out: Docs = docs.into_iter().filter(|d| cf.matches(d)).collect();
        SCAN_CROSSOVER.record_seq(n, t.elapsed());
        out
    }
}

/// Match-filter several per-shard snapshots as **one** morsel scatter,
/// without first flattening them into a single candidate vector: each
/// segment is cut into morsels in place and the morsel list (slice
/// descriptors, not documents) is what the workers claim from. Output
/// preserves segment order, then document order within each segment —
/// exactly what flattening would have produced. The sequential arm of
/// the shard router doesn't come through here at all (it matches under
/// each shard's read lock, see [`Collection::filter_into`]); this is the
/// parallel arm only.
pub(crate) fn filter_matches_segmented(
    pool: &WorkPool,
    segments: &[Docs],
    cf: &CompiledFilter,
) -> Docs {
    let total: usize = segments.iter().map(|s| s.len()).sum();
    if total == 0 {
        return Docs::new();
    }
    let per_morsel = pool.chunk_size(total, MORSEL_FLOOR);
    let morsels: Vec<&[Arc<Document>]> = segments
        .iter()
        .flat_map(|seg| seg.chunks(per_morsel))
        .collect();
    let parts = pool.scatter_morsels(&morsels, 1, |one| {
        one[0]
            .iter()
            .filter(|d| cf.matches(d))
            .cloned()
            .collect::<Docs>()
    });
    parts.into_iter().flatten().collect()
}

/// Fused filter + projection over a snapshot, for unsorted projected
/// finds: each matching document is projected immediately, while its
/// cache lines are still warm from match evaluation. Re-walking the
/// matched set afterwards (match everything, then project everything)
/// pays a second pass of memory stalls over a set that long since fell
/// out of cache — on a collection-sized scan that second pass, not the
/// materialization itself, is the projection cliff. Skip/limit apply to
/// the match stream *before* materialization, so a bounded window
/// projects only the documents it returns and stops the scan as soon as
/// it is full. Output is identical to `filter_matches` → `apply_order`
/// (without sort) → `project_matches` over the same snapshot.
pub(crate) fn filter_project_matches(
    pool: &WorkPool,
    docs: Docs,
    cf: &CompiledFilter,
    proj: &CompiledProjection,
    skip: usize,
    limit: Option<usize>,
) -> Docs {
    // An unbounded window parallelizes exactly like the unfused pair; a
    // bounded one runs sequentially so the early exit stays exact.
    let unbounded = skip == 0 && limit.is_none();
    if unbounded && SCAN_CROSSOVER.decide(pool, docs.len()).parallel {
        let per_morsel = pool.chunk_size(docs.len(), MORSEL_FLOOR);
        let parts = pool.scatter_morsels(&docs, per_morsel, |morsel| {
            morsel
                .iter()
                .filter(|d| cf.matches(d))
                .map(|d| Arc::new(proj.project_one(d)))
                .collect::<Docs>()
        });
        parts.into_iter().flatten().collect()
    } else {
        let n = docs.len();
        let t = Instant::now();
        let mut out = Docs::new();
        let mut matched = 0usize;
        for d in docs.iter() {
            if limit.is_some_and(|l| out.len() >= l) {
                break;
            }
            if !cf.matches(d) {
                continue;
            }
            matched += 1;
            if matched <= skip {
                continue;
            }
            out.push(Arc::new(proj.project_one(d)));
        }
        // A bounded window early-exits, so its timing says nothing about
        // full-scan per-item cost; only unbounded runs feed the model.
        if unbounded {
            SCAN_CROSSOVER.record_seq(n, t.elapsed());
        }
        out
    }
}

/// Materialize a compiled projection over a matched result set, in
/// parallel chunks for large sets (same policy as [`filter_matches`]).
/// Output order is the input order; each output document holds only the
/// projected fields.
fn project_matches(pool: &WorkPool, docs: &[Arc<Document>], proj: &CompiledProjection) -> Docs {
    if SCAN_CROSSOVER.decide(pool, docs.len()).parallel {
        let per_morsel = pool.chunk_size(docs.len(), MORSEL_FLOOR);
        let parts = pool.scatter_morsels(docs, per_morsel, |morsel| {
            morsel
                .iter()
                .map(|d| Arc::new(proj.project_one(d)))
                .collect::<Docs>()
        });
        parts.into_iter().flatten().collect()
    } else {
        docs.iter().map(|d| Arc::new(proj.project_one(d))).collect()
    }
}

/// For upserts, seed the new document from the filter's equality fields
/// (MongoDB does the same).
fn filter_equality_seed(f: &Filter) -> Value {
    let mut doc = json!({});
    for (path, preds) in &f.fields {
        for p in preds {
            if let crate::query::Predicate::Eq(v) = p {
                let _ = crate::value::set_path(&mut doc, path, v.clone());
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::Profiler;

    fn coll() -> Collection {
        Collection::new(
            "test",
            Arc::new(Profiler::new(16_384)),
            Arc::new(OrderedRwLock::new(LockRank::Clock, 0.0)),
        )
    }

    #[test]
    fn insert_assigns_id() {
        let c = coll();
        let id = c.insert_one(json!({"a": 1})).unwrap();
        assert!(id.as_str().unwrap().starts_with("oid"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn insert_duplicate_id_rejected() {
        let c = coll();
        c.insert_one(json!({"_id": "x", "a": 1})).unwrap();
        assert!(matches!(
            c.insert_one(json!({"_id": "x", "a": 2})),
            Err(StoreError::DuplicateKey(_))
        ));
    }

    #[test]
    fn insert_non_object_rejected() {
        let c = coll();
        assert!(c.insert_one(json!([1, 2])).is_err());
        assert!(c.insert_one(json!(42)).is_err());
    }

    #[test]
    fn find_by_filter() {
        let c = coll();
        c.insert_many(vec![
            json!({"el": ["Li", "O"], "n": 10}),
            json!({"el": ["Fe", "O"], "n": 200}),
            json!({"el": ["Li", "Fe", "O"], "n": 150}),
        ])
        .unwrap();
        let hits = c
            .find(&json!({"el": {"$all": ["Li", "O"]}, "n": {"$lte": 150}}))
            .unwrap();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn find_one_and_get() {
        let c = coll();
        let id = c.insert_one(json!({"a": 1})).unwrap();
        assert!(c.find_one(&json!({"a": 1})).unwrap().is_some());
        assert!(c.find_one(&json!({"a": 2})).unwrap().is_none());
        assert_eq!(c.get(&id).unwrap()["a"], json!(1));
    }

    #[test]
    fn update_many_and_one() {
        let c = coll();
        c.insert_many(vec![
            json!({"s": "R"}),
            json!({"s": "R"}),
            json!({"s": "C"}),
        ])
        .unwrap();
        let r = c
            .update_many(&json!({"s": "R"}), &json!({"$set": {"s": "D"}}))
            .unwrap();
        assert_eq!((r.matched, r.modified), (2, 2));
        assert_eq!(c.count(&json!({"s": "D"})).unwrap(), 2);

        let r = c
            .update_one(&json!({"s": "D"}), &json!({"$set": {"s": "E"}}))
            .unwrap();
        assert_eq!((r.matched, r.modified), (1, 1));
    }

    #[test]
    fn update_no_change_counts_matched_only() {
        let c = coll();
        c.insert_one(json!({"a": 1})).unwrap();
        let r = c
            .update_many(&json!({"a": 1}), &json!({"$set": {"a": 1}}))
            .unwrap();
        assert_eq!((r.matched, r.modified), (1, 0));
    }

    #[test]
    fn upsert_inserts_with_filter_seed() {
        let c = coll();
        let r = c
            .upsert(&json!({"key": "k1"}), &json!({"$set": {"v": 10}}))
            .unwrap();
        assert!(r.upserted);
        let doc = c.find_one(&json!({"key": "k1"})).unwrap().unwrap();
        assert_eq!(doc["v"], json!(10));
        // Second upsert updates in place.
        let r = c
            .upsert(&json!({"key": "k1"}), &json!({"$set": {"v": 20}}))
            .unwrap();
        assert!(!r.upserted);
        assert_eq!(c.count(&json!({"key": "k1"})).unwrap(), 1);
    }

    #[test]
    fn find_one_and_update_claims_atomically() {
        let c = coll();
        c.insert_many(vec![
            json!({"state": "READY", "prio": 2}),
            json!({"state": "READY", "prio": 9}),
        ])
        .unwrap();
        let claimed = c
            .find_one_and_update(
                &json!({"state": "READY"}),
                &json!({"$set": {"state": "RUNNING"}}),
                Some(&FindOptions::all().sort_by("prio", crate::cursor::SortDir::Desc)),
                true,
            )
            .unwrap()
            .unwrap();
        assert_eq!(claimed["prio"], json!(9));
        assert_eq!(claimed["state"], json!("RUNNING"));
        assert_eq!(c.count(&json!({"state": "READY"})).unwrap(), 1);
    }

    #[test]
    fn find_one_and_update_none_when_no_match() {
        let c = coll();
        let r = c
            .find_one_and_update(&json!({"x": 1}), &json!({"$set": {"y": 2}}), None, true)
            .unwrap();
        assert!(r.is_none());
    }

    #[test]
    fn delete() {
        let c = coll();
        c.insert_many(vec![json!({"a": 1}), json!({"a": 1}), json!({"a": 2})])
            .unwrap();
        assert_eq!(c.delete_many(&json!({"a": 1})).unwrap(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.delete_one(&json!({"a": 2})).unwrap());
        assert!(!c.delete_one(&json!({"a": 2})).unwrap());
    }

    #[test]
    fn index_accelerated_find_same_result() {
        let c = coll();
        for i in 0..100 {
            c.insert_one(json!({"n": i, "grp": i % 7})).unwrap();
        }
        let plain = c.find(&json!({"grp": 3})).unwrap();
        c.create_index("grp", false).unwrap();
        let indexed = c.find(&json!({"grp": 3})).unwrap();
        assert_eq!(plain.len(), indexed.len());

        let plain = c.find(&json!({"n": {"$gte": 20, "$lt": 30}})).unwrap();
        c.create_index("n", false).unwrap();
        let indexed = c.find(&json!({"n": {"$gte": 20, "$lt": 30}})).unwrap();
        assert_eq!(plain.len(), indexed.len());
        assert_eq!(indexed.len(), 10);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let c = coll();
        c.create_index("mps_id", true).unwrap();
        c.insert_one(json!({"mps_id": 1})).unwrap();
        assert!(c.insert_one(json!({"mps_id": 1})).is_err());
        assert_eq!(c.len(), 1);
        // Update into a conflict also rejected.
        c.insert_one(json!({"mps_id": 2})).unwrap();
        assert!(c
            .update_one(&json!({"mps_id": 2}), &json!({"$set": {"mps_id": 1}}))
            .is_err());
    }

    #[test]
    fn index_stays_consistent_through_updates_and_deletes() {
        let c = coll();
        c.create_index("k", false).unwrap();
        c.insert_one(json!({"_id": 1, "k": "a"})).unwrap();
        c.update_one(&json!({"_id": 1}), &json!({"$set": {"k": "b"}}))
            .unwrap();
        assert!(c.find(&json!({"k": "a"})).unwrap().is_empty());
        assert_eq!(c.find(&json!({"k": "b"})).unwrap().len(), 1);
        c.delete_many(&json!({"k": "b"})).unwrap();
        assert!(c.find(&json!({"k": "b"})).unwrap().is_empty());
    }

    #[test]
    fn distinct_values() {
        let c = coll();
        c.insert_many(vec![
            json!({"el": ["Li", "O"]}),
            json!({"el": ["Fe", "O"]}),
            json!({"el": ["Li"]}),
        ])
        .unwrap();
        let d = c.distinct("el", &json!({})).unwrap();
        assert_eq!(d, vec![json!("Fe"), json!("Li"), json!("O")]);
    }

    #[test]
    fn count_with_filter() {
        let c = coll();
        for i in 0..10 {
            c.insert_one(json!({ "n": i })).unwrap();
        }
        assert_eq!(c.count(&json!({})).unwrap(), 10);
        assert_eq!(c.count(&json!({"n": {"$lt": 5}})).unwrap(), 5);
    }

    #[test]
    fn explain_reports_access_path() {
        let c = coll();
        for i in 0..50 {
            c.insert_one(json!({"_id": format!("d{i}"), "grp": i % 5, "n": i}))
                .unwrap();
        }
        // Full scan without indexes.
        let e = c.explain(&json!({"grp": 3})).unwrap();
        assert_eq!(e["plan"], "COLLSCAN");
        assert_eq!(e["docs_examined"], 50);
        // Index equality.
        c.create_index("grp", false).unwrap();
        let e = c.explain(&json!({"grp": 3})).unwrap();
        assert_eq!(e["plan"], "INDEX_EQ");
        assert_eq!(e["index"], "grp");
        assert_eq!(e["docs_examined"], 10);
        // Index range.
        c.create_index("n", false).unwrap();
        let e = c.explain(&json!({"n": {"$gte": 40}})).unwrap();
        assert_eq!(e["plan"], "INDEX_RANGE");
        assert_eq!(e["docs_examined"], 10);
        // Id lookup beats everything.
        let e = c.explain(&json!({"_id": "d7"})).unwrap();
        assert_eq!(e["plan"], "ID_LOOKUP");
        assert_eq!(e["docs_examined"], 1);
    }

    #[test]
    fn cost_based_planner_picks_most_selective_index() {
        let c = coll();
        // grp repeats every 3 docs (20 hits/value); n is unique. A mixed
        // equality+range filter must pick whichever access path examines
        // fewer documents, not whichever index was created first.
        for i in 0..60 {
            c.insert_one(json!({"grp": i % 3, "n": i})).unwrap();
        }
        c.create_index("grp", false).unwrap();
        c.create_index("n", false).unwrap();

        let q = json!({"grp": 1, "n": {"$gte": 55}});
        let e = c.explain(&q).unwrap();
        assert_eq!(
            e["plan"], "INDEX_RANGE",
            "range (5 hits) beats eq (20): {e}"
        );
        assert_eq!(e["index"], "n");
        assert_eq!(e["docs_examined"], 5);
        let considered = e["considered"].as_array().unwrap();
        assert_eq!(considered.len(), 3, "eq + range + collscan: {e}");
        assert_eq!(c.find(&q).unwrap().len(), 2);

        // Flipped selectivity: now the equality side is cheaper.
        let q = json!({"grp": 1, "n": {"$gte": 0}});
        let e = c.explain(&q).unwrap();
        assert_eq!(e["plan"], "INDEX_EQ", "eq (20 hits) beats range (60): {e}");
        assert_eq!(e["index"], "grp");
    }

    #[test]
    fn in_queries_use_the_index() {
        let c = coll();
        for i in 0..50 {
            c.insert_one(json!({ "n": i })).unwrap();
        }
        c.create_index("n", false).unwrap();
        let q = json!({"n": {"$in": [3, 7, 7, 41]}});
        let e = c.explain(&q).unwrap();
        assert_eq!(e["plan"], "INDEX_IN");
        assert_eq!(e["index"], "n");
        assert_eq!(c.find(&q).unwrap().len(), 3);
    }

    /// Regression (PR 3 satellite): `explain` must report the plan the
    /// query actually executes. Verified via the per-plan profiler
    /// counters `scan` bumps on the access path it takes.
    #[test]
    fn explain_plan_matches_access_path_taken() {
        let prof = Arc::new(Profiler::new(16_384));
        let c = Collection::new(
            "t",
            prof.clone(),
            Arc::new(OrderedRwLock::new(LockRank::Clock, 0.0)),
        );
        for i in 0..40 {
            c.insert_one(json!({"grp": i % 4, "n": i})).unwrap();
        }
        c.create_index("grp", false).unwrap();
        c.create_index("n", false).unwrap();
        let queries = [
            json!({"grp": 2, "n": {"$lt": 3}}), // mixed: range is cheaper
            json!({"grp": 2}),                  // plain equality
            json!({"n": {"$in": [1, 2]}}),      // $in probe
            json!({"free_text": "x"}),          // nothing indexed
            json!({"_id": "nope"}),             // id point lookup
        ];
        for q in queries {
            let plan = c.plan_for(&q).unwrap();
            let explained = c.explain(&q).unwrap();
            assert_eq!(explained["plan"], plan.kind.name(), "{q}");
            let before = prof.counter(plan.kind.counter());
            c.find(&q).unwrap();
            assert_eq!(
                prof.counter(plan.kind.counter()),
                before + 1,
                "query {q}: explain chose {} but find took a different path",
                plan.kind.name()
            );
        }
    }

    #[test]
    fn version_counter_tracks_writes() {
        let c = coll();
        let v0 = c.version();
        c.insert_one(json!({"_id": "a", "a": 1})).unwrap();
        assert!(c.version() > v0, "insert must bump the generation");
        let v1 = c.version();
        // A no-op update leaves cached reads valid.
        c.update_many(&json!({"a": 1}), &json!({"$set": {"a": 1}}))
            .unwrap();
        assert_eq!(c.version(), v1);
        c.update_many(&json!({"a": 1}), &json!({"$set": {"a": 2}}))
            .unwrap();
        assert!(c.version() > v1, "update must bump the generation");
        let v2 = c.version();
        c.create_index("a", false).unwrap();
        assert!(c.version() > v2, "index creation changes plans");
        let v3 = c.version();
        c.delete_many(&json!({"a": 2})).unwrap();
        assert!(c.version() > v3, "delete must bump the generation");
        let v4 = c.version();
        c.clear();
        assert!(c.version() > v4, "clear must bump the generation");
    }

    #[test]
    #[cfg_attr(miri, ignore = "10k docs and real threads are slow under miri")]
    fn morsel_scan_matches_sequential() {
        let docs: Docs = (0..10_000)
            .map(|i| Arc::new(json!({"n": i, "grp": i % 7})))
            .collect();
        let cf = Filter::parse(&json!({"grp": 3})).unwrap().compile();
        let seq: Docs = docs.iter().filter(|d| cf.matches(d)).cloned().collect();
        // The crossover-routed entry point must agree with the
        // sequential path whichever arm it picks on this host.
        let routed = filter_matches(&WorkPool::new(4), docs.clone(), &cf);
        assert_eq!(routed, seq, "routed scan must preserve order");
        // The parallel arm itself, pinned on a fresh pool: a segmented
        // union fans out as ONE morsel scatter and must come back in
        // segment-major order.
        let pool = WorkPool::new(4);
        let mid = docs.len() / 2;
        let segments = vec![docs[..mid].to_vec(), docs[mid..].to_vec()];
        let par = filter_matches_segmented(&pool, &segments, &cf);
        assert_eq!(par, seq, "morsel scan must preserve segment-major order");
        let st = pool.stats();
        assert_eq!(st.morsel_scatters, 1, "one fan-out for the whole union");
        assert_eq!(st.jobs_dispatched, 0, "no per-chunk boxed jobs");
    }

    #[test]
    fn find_filter_and_count_filter_match_parsed_paths() {
        let c = coll();
        for i in 0..30 {
            c.insert_one(json!({"grp": i % 5, "n": i})).unwrap();
        }
        c.create_index("grp", false).unwrap();
        let q = json!({"grp": 2});
        let cf = Filter::parse(&q).unwrap().compile();
        assert_eq!(c.find_filter(&cf), c.find(&q).unwrap());
        assert_eq!(c.count_filter(&cf), c.count(&q).unwrap());
        let empty = Filter::parse(&json!({})).unwrap().compile();
        assert_eq!(c.count_filter(&empty), 30);
    }

    #[test]
    fn clear_preserves_index_definitions() {
        let c = coll();
        c.create_index("k", false).unwrap();
        c.insert_one(json!({"k": 1})).unwrap();
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.index_paths(), vec!["k".to_string()]);
        c.insert_one(json!({"k": 2})).unwrap();
        assert_eq!(c.find(&json!({"k": 2})).unwrap().len(), 1);
    }
}
