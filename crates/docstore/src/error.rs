//! Error types for the document store.

use std::fmt;

/// Errors produced by datastore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A query document was malformed (unknown operator, wrong operand type...).
    BadQuery(String),
    /// An update document was malformed.
    BadUpdate(String),
    /// A document violated a constraint (duplicate `_id`, unique index...).
    DuplicateKey(String),
    /// The referenced collection does not exist.
    NoSuchCollection(String),
    /// The referenced index does not exist.
    NoSuchIndex(String),
    /// Document rejected by validation (not an object, nesting too deep...).
    InvalidDocument(String),
    /// Persistence layer failure (I/O, corrupt journal...).
    Persistence(String),
    /// MapReduce job failed.
    MapReduce(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::BadQuery(m) => write!(f, "bad query: {m}"),
            StoreError::BadUpdate(m) => write!(f, "bad update: {m}"),
            StoreError::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            StoreError::NoSuchCollection(m) => write!(f, "no such collection: {m}"),
            StoreError::NoSuchIndex(m) => write!(f, "no such index: {m}"),
            StoreError::InvalidDocument(m) => write!(f, "invalid document: {m}"),
            StoreError::Persistence(m) => write!(f, "persistence error: {m}"),
            StoreError::MapReduce(m) => write!(f, "mapreduce error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias used throughout the store.
pub type Result<T> = std::result::Result<T, StoreError>;
