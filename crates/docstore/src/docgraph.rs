//! Document structure analysis.
//!
//! Table I of the paper characterizes the complexity of each collection's
//! documents as a graph: number of nodes, maximum depth, and mean depth.
//! This module computes those statistics by walking a document as a tree
//! whose internal nodes are objects/arrays and whose leaves are scalars.

use serde_json::Value;

/// Structural statistics of one document (or a merged set of documents).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DocStats {
    /// Total nodes in the tree (every object, array, and scalar).
    pub nodes: usize,
    /// Depth of the deepest node (root = 1).
    pub depth: usize,
    /// Mean depth over leaf nodes.
    pub mean_depth: f64,
}

/// Compute [`DocStats`] for a document.
pub fn doc_stats(doc: &Value) -> DocStats {
    let mut nodes = 0usize;
    let mut max_depth = 0usize;
    let mut leaf_depth_sum = 0usize;
    let mut leaves = 0usize;
    walk(
        doc,
        1,
        &mut nodes,
        &mut max_depth,
        &mut leaf_depth_sum,
        &mut leaves,
    );
    DocStats {
        nodes,
        depth: max_depth,
        mean_depth: if leaves == 0 {
            0.0
        } else {
            leaf_depth_sum as f64 / leaves as f64
        },
    }
}

fn walk(
    v: &Value,
    depth: usize,
    nodes: &mut usize,
    max_depth: &mut usize,
    leaf_sum: &mut usize,
    leaves: &mut usize,
) {
    *nodes += 1;
    *max_depth = (*max_depth).max(depth);
    match v {
        Value::Object(m) if !m.is_empty() => {
            for child in m.values() {
                walk(child, depth + 1, nodes, max_depth, leaf_sum, leaves);
            }
        }
        Value::Array(a) if !a.is_empty() => {
            for child in a {
                walk(child, depth + 1, nodes, max_depth, leaf_sum, leaves);
            }
        }
        _ => {
            *leaf_sum += depth;
            *leaves += 1;
        }
    }
}

/// Structural stats of a *schema* formed by merging several documents:
/// two nodes are the same schema node when they share the same path of
/// object keys (array elements collapse into one). This matches how the
/// paper summarizes a whole collection with a single structure graph.
pub fn schema_stats<D: std::borrow::Borrow<Value>>(docs: &[D]) -> DocStats {
    let mut schema = Value::Object(serde_json::Map::new());
    for d in docs {
        merge_schema(&mut schema, d.borrow());
    }
    doc_stats(&schema)
}

fn merge_schema(schema: &mut Value, doc: &Value) {
    match doc {
        Value::Object(m) => {
            if !schema.is_object() {
                *schema = Value::Object(serde_json::Map::new());
            }
            let sm = schema.as_object_mut().expect("just set");
            for (k, v) in m {
                let slot = sm.entry(k.clone()).or_insert(Value::Null);
                merge_schema(slot, v);
            }
        }
        Value::Array(a) => {
            if !schema.is_array() {
                *schema = Value::Array(vec![Value::Null]);
            }
            let sa = schema.as_array_mut().expect("just set");
            if sa.is_empty() {
                sa.push(Value::Null);
            }
            for v in a {
                merge_schema(&mut sa[0], v);
            }
        }
        scalar => {
            if schema.is_null() {
                *schema = scalar.clone();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn scalar_root() {
        let s = doc_stats(&json!(42));
        assert_eq!(s.nodes, 1);
        assert_eq!(s.depth, 1);
        assert_eq!(s.mean_depth, 1.0);
    }

    #[test]
    fn flat_object() {
        // root + 3 scalar children = 4 nodes; leaves at depth 2.
        let s = doc_stats(&json!({"a": 1, "b": 2, "c": 3}));
        assert_eq!(s.nodes, 4);
        assert_eq!(s.depth, 2);
        assert_eq!(s.mean_depth, 2.0);
    }

    #[test]
    fn nested_structure() {
        let s = doc_stats(&json!({"a": {"b": {"c": 1}}, "d": 2}));
        // root, a, b, c, d = 5 nodes; leaves c@4 and d@2 → mean 3.0.
        assert_eq!(s.nodes, 5);
        assert_eq!(s.depth, 4);
        assert_eq!(s.mean_depth, 3.0);
    }

    #[test]
    fn arrays_count_elements() {
        let s = doc_stats(&json!({"xs": [1, 2, 3]}));
        // root, xs, 3 scalars = 5 nodes; leaves at depth 3.
        assert_eq!(s.nodes, 5);
        assert_eq!(s.depth, 3);
        assert_eq!(s.mean_depth, 3.0);
    }

    #[test]
    fn empty_containers_are_leaves() {
        let s = doc_stats(&json!({"a": {}, "b": []}));
        assert_eq!(s.nodes, 3);
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn schema_merge_unions_keys() {
        let docs = vec![json!({"a": 1}), json!({"b": {"c": 2}})];
        let s = schema_stats(&docs);
        // root, a, b, c = 4 nodes.
        assert_eq!(s.nodes, 4);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn schema_merge_collapses_array_elements() {
        let docs = vec![json!({"xs": [{"y": 1}, {"y": 2}, {"z": 3}]})];
        let s = schema_stats(&docs);
        // root, xs, element-schema, y, z = 5 nodes.
        assert_eq!(s.nodes, 5);
        assert_eq!(s.depth, 4);
    }
}
