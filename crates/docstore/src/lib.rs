//! # mp-docstore — embedded NoSQL document store
//!
//! A from-scratch, thread-safe, in-process reproduction of the MongoDB
//! feature set the Materials Project paper (SC 2012) builds on:
//!
//! * JSON documents organized in named [`Collection`]s inside a
//!   [`Database`];
//! * Mongo-style **query language** (`$all`, `$lte`, `$in`, `$or`,
//!   `$elemMatch`, dotted paths through arrays, …) — see [`query`];
//! * **atomic update operators** (`$set`, `$inc`, `$push`, …) — see
//!   [`update`];
//! * **secondary indexes** with equality/range acceleration — [`index`];
//! * **find-and-modify** (the atomic queue-claim primitive the FireWorks
//!   workflow engine relies on);
//! * two **MapReduce** engines — the paper's single-threaded "builtin"
//!   and a parallel "Hadoop-like" runtime — see [`mapreduce`];
//! * a per-operation **profiler** exporting Fig.-5-style latency
//!   histograms — [`profiler`];
//! * document **structure statistics** (nodes/depth/mean depth) exactly
//!   as Table I reports them — [`docgraph`];
//! * snapshot + journal **persistence** with crash recovery — [`persist`];
//! * a **write-behind durable database** whose every mutation is
//!   journaled, so recovery replays to the live state — [`durable`].
//!
//! ```
//! use mp_docstore::Database;
//! use serde_json::json;
//!
//! let db = Database::new();
//! let engines = db.collection("engines");
//! engines.insert_one(json!({
//!     "elements": ["Li", "O"], "nelectrons": 120, "state": "READY"
//! })).unwrap();
//!
//! // The paper's job-selection query, §III-B2:
//! let ready = engines.find(&json!({
//!     "elements": {"$all": ["Li", "O"]},
//!     "nelectrons": {"$lte": 200}
//! })).unwrap();
//! assert_eq!(ready.len(), 1);
//! ```

pub mod aggregate;
pub mod collection;
pub mod cursor;
pub mod database;
pub mod docgraph;
pub mod durable;
pub mod error;
pub mod index;
pub mod mapreduce;
pub mod persist;
pub mod profiler;
pub mod query;
pub mod shard;
pub mod update;
pub mod value;

pub use aggregate::{parse_pipeline, run_pipeline, Accumulator, Stage as AggStage};
pub use collection::{Collection, PlanKind, QueryPlan, UpdateResult};
pub use cursor::{CompiledFindOptions, CompiledProjection, FindOptions, SortDir};
pub use database::Database;
pub use docgraph::{doc_stats, schema_stats, DocStats};
pub use durable::{DurableDatabase, DurableOptions};
pub use error::{Result, StoreError};
pub use index::{DocId, Index};
pub use mapreduce::{BuiltinEngine, HadoopEngine, HdfsStage, MapReduce};
pub use persist::{GroupCommit, JournalOp, Persister, RecoveryReport};
pub use profiler::{OpKind, Profiler, RemoteLatencyModel};
pub use query::{CompiledFilter, Filter};
pub use shard::{ReadPreference, ReplicaSet, ShardedCluster};
pub use update::Update;
pub use value::{to_docs, Docs, Document};
