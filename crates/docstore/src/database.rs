//! The database: a set of named collections sharing a profiler and a
//! simulated clock, mirroring one `mongod` deployment serving every role
//! in the Materials Project architecture at once.

use crate::collection::Collection;
use crate::docgraph::{schema_stats, DocStats};
use crate::profiler::Profiler;
use mp_sync::{LockRank, OrderedRwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named set of collections. Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

/// The collection map plus the generation floors of dropped
/// collections. Both live under one lock: the floor a re-created
/// collection must inherit is decided by the same critical section that
/// inserts it, so no interleaving can observe the successor at a
/// generation the predecessor already published.
#[derive(Default)]
struct Registry {
    map: BTreeMap<String, Arc<Collection>>,
    /// `name → generation the dropped collection had reached`. A
    /// successor seeds its version past this floor so `(name,
    /// generation)` cache keys never alias across a drop/recreate.
    floors: BTreeMap<String, u64>,
}

struct DbInner {
    collections: OrderedRwLock<Registry>,
    profiler: Arc<Profiler>,
    clock: Arc<OrderedRwLock<f64>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Create an empty database with a 64k-sample profiler.
    pub fn new() -> Self {
        Database {
            inner: Arc::new(DbInner {
                collections: OrderedRwLock::new(LockRank::Database, Registry::default()),
                profiler: Arc::new(Profiler::new(65_536)),
                clock: Arc::new(OrderedRwLock::new(LockRank::Clock, 0.0)),
            }),
        }
    }

    /// Get (creating on first use, like MongoDB) the named collection.
    ///
    /// Two threads can both miss on the read probe; the `entry` upgrade
    /// under the write lock makes the construction race benign — the
    /// loser's closure never runs and both callers get the same `Arc`
    /// (asserted by `concurrent_creation_yields_one_instance`).
    pub fn collection(&self, name: &str) -> Arc<Collection> {
        if let Some(c) = self.inner.collections.read().map.get(name) {
            return c.clone();
        }
        let mut reg = self.inner.collections.write();
        let floor = reg.floors.get(name).copied().unwrap_or(0);
        reg.map
            .entry(name.to_string())
            .or_insert_with(|| {
                let c =
                    Collection::new(name, self.inner.profiler.clone(), self.inner.clock.clone());
                c.set_version_floor(floor);
                Arc::new(c)
            })
            .clone()
    }

    /// Names of all existing collections.
    pub fn collection_names(&self) -> Vec<String> {
        self.inner.collections.read().map.keys().cloned().collect()
    }

    /// Drop a collection entirely.
    ///
    /// The drop is itself a mutation of the dropped collection: its
    /// generation is bumped one last time and recorded as the floor a
    /// future same-named collection starts above, so query-cache entries
    /// keyed to the old `(name, generation)` can never be served from
    /// the successor.
    pub fn drop_collection(&self, name: &str) -> bool {
        let mut reg = self.inner.collections.write();
        match reg.map.remove(name) {
            Some(c) => {
                c.bump_version();
                reg.floors.insert(name.to_string(), c.version());
                true
            }
            None => false,
        }
    }

    /// The shared operation profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.inner.profiler
    }

    /// Advance the simulated clock (seconds); `$currentDate` reads it.
    pub fn set_time(&self, t: f64) {
        *self.inner.clock.write() = t;
    }

    /// Current simulated time (seconds).
    pub fn time(&self) -> f64 {
        *self.inner.clock.read()
    }

    /// Total documents across all collections.
    pub fn total_documents(&self) -> usize {
        self.inner
            .collections
            .read()
            .map
            .values()
            .map(|c| c.len())
            .sum()
    }

    /// Table-I-style structure statistics for one collection's merged
    /// document schema.
    pub fn collection_structure(&self, name: &str) -> DocStats {
        let docs = self.collection(name).dump();
        schema_stats(&docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn collections_created_on_demand() {
        let db = Database::new();
        assert!(db.collection_names().is_empty());
        db.collection("mps").insert_one(json!({"a": 1})).unwrap();
        assert_eq!(db.collection_names(), vec!["mps".to_string()]);
    }

    #[test]
    fn same_collection_instance() {
        let db = Database::new();
        db.collection("x").insert_one(json!({"a": 1})).unwrap();
        assert_eq!(db.collection("x").len(), 1);
    }

    #[test]
    fn clone_shares_state() {
        let db = Database::new();
        let db2 = db.clone();
        db.collection("c").insert_one(json!({"a": 1})).unwrap();
        assert_eq!(db2.collection("c").len(), 1);
    }

    #[test]
    fn drop_collection() {
        let db = Database::new();
        db.collection("c").insert_one(json!({})).unwrap();
        assert!(db.drop_collection("c"));
        assert!(!db.drop_collection("c"));
        assert!(db.collection_names().is_empty());
    }

    #[test]
    fn drop_and_recreate_never_reuses_generations() {
        // Regression: a re-created collection restarting at generation 0
        // could reach a generation the dropped one had already
        // published, falsely validating stale (name, generation) cache
        // entries. The successor must start strictly above the floor.
        let db = Database::new();
        let c = db.collection("c");
        c.insert_one(json!({"_id": 1, "v": "old"})).unwrap();
        let seen = c.version();
        assert!(db.drop_collection("c"));
        let c2 = db.collection("c");
        assert!(
            c2.version() > seen,
            "successor starts at {} which aliases generation {seen}",
            c2.version()
        );
    }

    #[test]
    fn sim_clock_feeds_current_date() {
        let db = Database::new();
        db.set_time(42.0);
        let c = db.collection("c");
        c.insert_one(json!({"_id": 1})).unwrap();
        c.update_one(&json!({"_id": 1}), &json!({"$currentDate": {"ts": true}}))
            .unwrap();
        assert_eq!(
            c.find_one(&json!({"_id": 1})).unwrap().unwrap()["ts"],
            json!(42)
        );
    }

    #[test]
    fn concurrent_creation_yields_one_instance() {
        // Regression for the read-miss/construct race: every thread must
        // end up with the *same* Arc<Collection>, never a duplicate
        // handle whose documents would be lost.
        let db = Database::new();
        let mut handles = Vec::new();
        for _ in 0..16 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                Arc::as_ptr(&db.collection("racy")) as usize
            }));
        }
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "{ptrs:?}");
    }

    #[test]
    fn profiler_sees_all_collections() {
        let db = Database::new();
        db.collection("a").insert_one(json!({})).unwrap();
        db.collection("b").find(&json!({})).unwrap();
        assert!(db.profiler().total_ops() >= 2);
    }

    #[test]
    fn structure_stats_of_collection() {
        let db = Database::new();
        db.collection("c")
            .insert_one(json!({"_id": 1, "a": {"b": 1}}))
            .unwrap();
        let s = db.collection_structure("c");
        assert!(s.nodes >= 4);
        assert!(s.depth >= 3);
    }

    #[test]
    fn concurrent_access() {
        let db = Database::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    db.collection("shared")
                        .insert_one(json!({"t": t, "i": i}))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.collection("shared").len(), 400);
    }
}
