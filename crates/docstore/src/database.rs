//! The database: a set of named collections sharing a profiler and a
//! simulated clock, mirroring one `mongod` deployment serving every role
//! in the Materials Project architecture at once.

use crate::collection::Collection;
use crate::docgraph::{schema_stats, DocStats};
use crate::profiler::Profiler;
use mp_sync::{LockRank, OrderedRwLock};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named set of collections. Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

struct DbInner {
    collections: OrderedRwLock<BTreeMap<String, Arc<Collection>>>,
    profiler: Arc<Profiler>,
    clock: Arc<OrderedRwLock<f64>>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// Create an empty database with a 64k-sample profiler.
    pub fn new() -> Self {
        Database {
            inner: Arc::new(DbInner {
                collections: OrderedRwLock::new(LockRank::Database, BTreeMap::new()),
                profiler: Arc::new(Profiler::new(65_536)),
                clock: Arc::new(OrderedRwLock::new(LockRank::Clock, 0.0)),
            }),
        }
    }

    /// Get (creating on first use, like MongoDB) the named collection.
    ///
    /// Two threads can both miss on the read probe; the `entry` upgrade
    /// under the write lock makes the construction race benign — the
    /// loser's closure never runs and both callers get the same `Arc`
    /// (asserted by `concurrent_creation_yields_one_instance`).
    pub fn collection(&self, name: &str) -> Arc<Collection> {
        if let Some(c) = self.inner.collections.read().get(name) {
            return c.clone();
        }
        let mut map = self.inner.collections.write();
        map.entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(Collection::new(
                    name,
                    self.inner.profiler.clone(),
                    self.inner.clock.clone(),
                ))
            })
            .clone()
    }

    /// Names of all existing collections.
    pub fn collection_names(&self) -> Vec<String> {
        self.inner.collections.read().keys().cloned().collect()
    }

    /// Drop a collection entirely.
    pub fn drop_collection(&self, name: &str) -> bool {
        self.inner.collections.write().remove(name).is_some()
    }

    /// The shared operation profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.inner.profiler
    }

    /// Advance the simulated clock (seconds); `$currentDate` reads it.
    pub fn set_time(&self, t: f64) {
        *self.inner.clock.write() = t;
    }

    /// Current simulated time (seconds).
    pub fn time(&self) -> f64 {
        *self.inner.clock.read()
    }

    /// Total documents across all collections.
    pub fn total_documents(&self) -> usize {
        self.inner
            .collections
            .read()
            .values()
            .map(|c| c.len())
            .sum()
    }

    /// Table-I-style structure statistics for one collection's merged
    /// document schema.
    pub fn collection_structure(&self, name: &str) -> DocStats {
        let docs = self.collection(name).dump();
        schema_stats(&docs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn collections_created_on_demand() {
        let db = Database::new();
        assert!(db.collection_names().is_empty());
        db.collection("mps").insert_one(json!({"a": 1})).unwrap();
        assert_eq!(db.collection_names(), vec!["mps".to_string()]);
    }

    #[test]
    fn same_collection_instance() {
        let db = Database::new();
        db.collection("x").insert_one(json!({"a": 1})).unwrap();
        assert_eq!(db.collection("x").len(), 1);
    }

    #[test]
    fn clone_shares_state() {
        let db = Database::new();
        let db2 = db.clone();
        db.collection("c").insert_one(json!({"a": 1})).unwrap();
        assert_eq!(db2.collection("c").len(), 1);
    }

    #[test]
    fn drop_collection() {
        let db = Database::new();
        db.collection("c").insert_one(json!({})).unwrap();
        assert!(db.drop_collection("c"));
        assert!(!db.drop_collection("c"));
        assert!(db.collection_names().is_empty());
    }

    #[test]
    fn sim_clock_feeds_current_date() {
        let db = Database::new();
        db.set_time(42.0);
        let c = db.collection("c");
        c.insert_one(json!({"_id": 1})).unwrap();
        c.update_one(&json!({"_id": 1}), &json!({"$currentDate": {"ts": true}}))
            .unwrap();
        assert_eq!(
            c.find_one(&json!({"_id": 1})).unwrap().unwrap()["ts"],
            json!(42)
        );
    }

    #[test]
    fn concurrent_creation_yields_one_instance() {
        // Regression for the read-miss/construct race: every thread must
        // end up with the *same* Arc<Collection>, never a duplicate
        // handle whose documents would be lost.
        let db = Database::new();
        let mut handles = Vec::new();
        for _ in 0..16 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                Arc::as_ptr(&db.collection("racy")) as usize
            }));
        }
        let ptrs: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ptrs.windows(2).all(|w| w[0] == w[1]), "{ptrs:?}");
    }

    #[test]
    fn profiler_sees_all_collections() {
        let db = Database::new();
        db.collection("a").insert_one(json!({})).unwrap();
        db.collection("b").find(&json!({})).unwrap();
        assert!(db.profiler().total_ops() >= 2);
    }

    #[test]
    fn structure_stats_of_collection() {
        let db = Database::new();
        db.collection("c")
            .insert_one(json!({"_id": 1, "a": {"b": 1}}))
            .unwrap();
        let s = db.collection_structure("c");
        assert!(s.nodes >= 4);
        assert!(s.depth >= 3);
    }

    #[test]
    fn concurrent_access() {
        let db = Database::new();
        let mut handles = Vec::new();
        for t in 0..8 {
            let db = db.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    db.collection("shared")
                        .insert_one(json!({"t": t, "i": i}))
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.collection("shared").len(), 400);
    }
}
