//! Per-operation latency profiling.
//!
//! Figure 5 of the paper is a histogram of query times "across all
//! collections" plus a time-series inset. This module records one sample
//! per store operation into a bounded ring buffer and can export exactly
//! those two views. An optional *simulated latency model* adds the
//! network/disk component a remote MongoDB deployment would see, so the
//! reproduced histogram lands in the paper's few-hundred-millisecond
//! regime instead of the in-process microsecond regime.

use mp_sync::{LockRank, OrderedMutex};
use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

/// Kind of store operation being timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Insert,
    Find,
    Update,
    Delete,
    Count,
    FindAndModify,
    MapReduce,
}

impl OpKind {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Insert => "insert",
            OpKind::Find => "find",
            OpKind::Update => "update",
            OpKind::Delete => "delete",
            OpKind::Count => "count",
            OpKind::FindAndModify => "findAndModify",
            OpKind::MapReduce => "mapreduce",
        }
    }
}

/// One recorded operation.
#[derive(Debug, Clone)]
pub struct OpSample {
    /// Collection the operation ran against.
    pub collection: String,
    /// Operation kind.
    pub kind: OpKind,
    /// Measured in-process latency, microseconds.
    pub micros: u64,
    /// Monotonic sequence number (stands in for wall-clock time).
    pub seq: u64,
}

struct State {
    samples: VecDeque<OpSample>,
    seq: u64,
    enabled: bool,
    counters: BTreeMap<String, u64>,
}

/// Bounded ring buffer of operation samples.
pub struct Profiler {
    state: OrderedMutex<State>,
    capacity: usize,
}

impl Profiler {
    /// Create a profiler retaining at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        Profiler {
            // Innermost rank: `record` runs from RAII timers that may
            // drop while store guards are (briefly) still live.
            state: OrderedMutex::new(
                LockRank::Profiler,
                State {
                    samples: VecDeque::with_capacity(capacity.min(4096)),
                    seq: 0,
                    enabled: true,
                    counters: BTreeMap::new(),
                },
            ),
            capacity,
        }
    }

    /// Enable or disable sampling (disabled costs one mutex probe per op).
    pub fn set_enabled(&self, on: bool) {
        self.state.lock().enabled = on;
    }

    /// Begin timing an operation; the returned guard records on drop.
    pub fn start(&self, collection: &str, kind: OpKind) -> OpTimer<'_> {
        OpTimer {
            profiler: self,
            collection: collection.to_string(),
            kind,
            start: Instant::now(),
        }
    }

    fn record(&self, collection: String, kind: OpKind, micros: u64) {
        let mut st = self.state.lock();
        if !st.enabled {
            return;
        }
        let seq = st.seq;
        st.seq += 1;
        if st.samples.len() == self.capacity {
            st.samples.pop_front();
        }
        st.samples.push_back(OpSample {
            collection,
            kind,
            micros,
            seq,
        });
    }

    /// Increment the named event counter (`plan.collscan`, `cache.hit`,
    /// ...). Counters are independent of sampling being enabled and are
    /// not capped by the ring-buffer capacity.
    pub fn bump(&self, counter: &str) {
        let mut st = self.state.lock();
        *st.counters.entry(counter.to_string()).or_insert(0) += 1;
    }

    /// Current value of a named counter (0 when never bumped).
    pub fn counter(&self, counter: &str) -> u64 {
        self.state
            .lock()
            .counters
            .get(counter)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of all named counters.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.state.lock().counters.clone()
    }

    /// Copy out all retained samples.
    pub fn samples(&self) -> Vec<OpSample> {
        self.state.lock().samples.iter().cloned().collect()
    }

    /// Total operations observed since creation (not capped by capacity).
    pub fn total_ops(&self) -> u64 {
        self.state.lock().seq
    }

    /// Drop all samples.
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.samples.clear();
    }

    /// Histogram of latencies with logarithmic bucket edges, for Fig. 5.
    /// `edges_micros` are upper bounds; a final overflow bucket is added.
    pub fn histogram(&self, edges_micros: &[u64]) -> Vec<(String, usize)> {
        let samples = self.samples();
        let mut counts = vec![0usize; edges_micros.len() + 1];
        for s in &samples {
            let mut placed = false;
            for (i, edge) in edges_micros.iter().enumerate() {
                if s.micros <= *edge {
                    counts[i] += 1;
                    placed = true;
                    break;
                }
            }
            if !placed {
                *counts.last_mut().expect("overflow bucket") += 1;
            }
        }
        let mut out = Vec::with_capacity(counts.len());
        let mut lo = 0u64;
        for (i, edge) in edges_micros.iter().enumerate() {
            out.push((format!("{}-{}us", lo, edge), counts[i]));
            lo = *edge;
        }
        out.push((format!(">{}us", lo), counts[edges_micros.len()]));
        out
    }

    /// Latency percentile over retained samples (p in [0,100]).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        let mut v: Vec<u64> = self.samples().iter().map(|s| s.micros).collect();
        if v.is_empty() {
            return None;
        }
        v.sort_unstable();
        let rank = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
        Some(v[rank.min(v.len() - 1)])
    }
}

/// RAII timer returned by [`Profiler::start`].
pub struct OpTimer<'a> {
    profiler: &'a Profiler,
    collection: String,
    kind: OpKind,
    start: Instant,
}

impl Drop for OpTimer<'_> {
    fn drop(&mut self) {
        let micros = self.start.elapsed().as_micros() as u64;
        self.profiler
            .record(std::mem::take(&mut self.collection), self.kind, micros);
    }
}

/// Deterministic latency model for a *remote* datastore deployment:
/// client → proxy → server round trip plus occasional page faults. Used by
/// the Fig. 5 harness to place in-process measurements in the regime a
/// 2012 WAN client of materialsproject.org observed.
#[derive(Debug, Clone)]
pub struct RemoteLatencyModel {
    /// Fixed round-trip time, microseconds.
    pub rtt_micros: u64,
    /// Per-returned-document serialization cost, microseconds.
    pub per_doc_micros: u64,
    /// Every `fault_every`-th query pays `fault_micros` (cold working set).
    pub fault_every: u64,
    /// Page-fault penalty, microseconds.
    pub fault_micros: u64,
}

impl Default for RemoteLatencyModel {
    fn default() -> Self {
        // ~180 ms WAN RTT + apache/wsgi overhead, 40 us/doc, a 1.6 s
        // penalty every 97th query: yields Fig. 5's few-hundred-ms mode
        // with a sparse tail of multi-second outliers.
        RemoteLatencyModel {
            rtt_micros: 180_000,
            per_doc_micros: 40,
            fault_every: 97,
            fault_micros: 1_600_000,
        }
    }
}

impl RemoteLatencyModel {
    /// Latency a remote client would observe for the `seq`-th query that
    /// took `local_micros` in-process and returned `ndocs` documents.
    pub fn observed_micros(&self, seq: u64, local_micros: u64, ndocs: usize) -> u64 {
        let mut t = self.rtt_micros + local_micros + self.per_doc_micros * ndocs as u64;
        // Deterministic jitter derived from the sequence number.
        let jitter = seq.wrapping_mul(2654435761) % 60_000;
        t += jitter;
        if self.fault_every > 0 && seq % self.fault_every == self.fault_every - 1 {
            t += self.fault_micros;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let p = Profiler::new(10);
        {
            let _t = p.start("c", OpKind::Find);
        }
        {
            let _t = p.start("c", OpKind::Insert);
        }
        assert_eq!(p.samples().len(), 2);
        assert_eq!(p.total_ops(), 2);
    }

    #[test]
    fn ring_buffer_caps() {
        let p = Profiler::new(3);
        for _ in 0..10 {
            let _t = p.start("c", OpKind::Find);
        }
        assert_eq!(p.samples().len(), 3);
        assert_eq!(p.total_ops(), 10);
        // Oldest dropped: sequence numbers are the last three.
        let seqs: Vec<u64> = p.samples().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn disabled_records_nothing() {
        let p = Profiler::new(10);
        p.set_enabled(false);
        {
            let _t = p.start("c", OpKind::Find);
        }
        assert!(p.samples().is_empty());
    }

    #[test]
    fn histogram_buckets() {
        let p = Profiler::new(100);
        // Inject synthetic samples via the public record path.
        for micros in [5u64, 50, 500, 5000] {
            p.record("c".into(), OpKind::Find, micros);
        }
        let h = p.histogram(&[10, 100, 1000]);
        let counts: Vec<usize> = h.iter().map(|(_, c)| *c).collect();
        assert_eq!(counts, vec![1, 1, 1, 1]);
    }

    #[test]
    fn percentiles() {
        let p = Profiler::new(100);
        for m in 1..=100u64 {
            p.record("c".into(), OpKind::Find, m);
        }
        assert_eq!(p.percentile(0.0), Some(1));
        assert_eq!(p.percentile(100.0), Some(100));
        let med = p.percentile(50.0).unwrap();
        assert!((49..=52).contains(&med));
    }

    #[test]
    fn latency_model_regime() {
        let m = RemoteLatencyModel::default();
        // Typical query: few hundred ms.
        let t = m.observed_micros(5, 300, 20);
        assert!(t > 150_000 && t < 500_000, "typical {t}");
        // Fault query: > 1 s.
        let t = m.observed_micros(96, 300, 20);
        assert!(t > 1_000_000, "fault {t}");
    }
}
