//! MapReduce over collections.
//!
//! Two engines with identical semantics but different execution models:
//!
//! * [`BuiltinEngine`] — deliberately single-threaded, reproducing
//!   MongoDB's built-in MapReduce, which the paper notes is "severely
//!   limited by implementation within a single-threaded Javascript
//!   engine" (§IV-C2).
//! * [`HadoopEngine`] — partitions the input and scatters the mappers
//!   over the shared `mp-exec` work pool, reproducing the Mongo-Hadoop
//!   connector the paper found "several times faster" (§IV-B2).
//!
//! The V&V framework (§IV-C2: "A logical language in which to write the
//! V&V of a database is MapReduce") and the materials-view builder
//! (§III-B3) are both written against the [`MapReduce`] trait.

use crate::error::Result;
use crate::value::{Document, OrderedValue};
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Emits `(key, value)` pairs for one input document.
pub type MapFn = dyn Fn(&Value, &mut dyn FnMut(Value, Value)) + Sync;
/// Folds all values of one key into a single value.
pub type ReduceFn = dyn Fn(&Value, &[Value]) -> Value + Sync;

/// A MapReduce execution engine.
///
/// Inputs are shared-ownership [`Arc<Document>`]s — the same handles the
/// read path returns — so staging a collection into a job never deep-copies
/// it; mappers borrow `&Value` through the `Arc`.
pub trait MapReduce {
    /// Run map + shuffle + reduce over `docs`; returns key → reduced value
    /// in key order.
    fn run(
        &self,
        docs: &[Arc<Document>],
        map: &MapFn,
        reduce: &ReduceFn,
    ) -> Result<Vec<(Value, Value)>>;

    /// Engine display name (for experiment tables).
    fn name(&self) -> &'static str;
}

/// Sequential engine: one thread maps every document, then reduces.
///
/// A per-document `overhead_ns` busy-delay models the interpreter cost of
/// MongoDB's JavaScript engine relative to native code; zero by default.
#[derive(Default)]
pub struct BuiltinEngine {
    /// Extra per-document cost in nanoseconds (interpreter tax).
    pub overhead_ns: u64,
}

impl BuiltinEngine {
    /// Engine with an explicit interpreter-tax per document.
    pub fn with_overhead_ns(overhead_ns: u64) -> Self {
        BuiltinEngine { overhead_ns }
    }
}

fn spin_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    let start = std::time::Instant::now();
    while (start.elapsed().as_nanos() as u64) < ns {
        std::hint::spin_loop();
    }
}

impl MapReduce for BuiltinEngine {
    fn run(
        &self,
        docs: &[Arc<Document>],
        map: &MapFn,
        reduce: &ReduceFn,
    ) -> Result<Vec<(Value, Value)>> {
        let mut groups: BTreeMap<OrderedValue, Vec<Value>> = BTreeMap::new();
        for doc in docs {
            spin_ns(self.overhead_ns);
            map(doc, &mut |k, v| {
                groups.entry(OrderedValue(k)).or_default().push(v);
            });
        }
        let mut out = Vec::with_capacity(groups.len());
        for (k, mut vs) in groups {
            let reduced = if vs.len() == 1 {
                vs.remove(0)
            } else {
                reduce(&k.0, &vs)
            };
            out.push((k.0, reduced));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "builtin-single-threaded"
    }
}

/// Parallel engine: input split into `workers` partitions; each worker
/// maps its partition and pre-reduces locally (combiner), then a final
/// reduce merges the per-worker groups.
pub struct HadoopEngine {
    /// Number of worker threads.
    pub workers: usize,
}

impl HadoopEngine {
    /// Engine with `workers` threads (min 1).
    pub fn new(workers: usize) -> Self {
        HadoopEngine {
            workers: workers.max(1),
        }
    }
}

impl MapReduce for HadoopEngine {
    fn run(
        &self,
        docs: &[Arc<Document>],
        map: &MapFn,
        reduce: &ReduceFn,
    ) -> Result<Vec<(Value, Value)>> {
        let nw = self.workers.min(docs.len().max(1));
        let chunk = docs.len().div_ceil(nw);

        // Morsel-scatter the map phase: partitions are claimed off the
        // input slice by whichever pool slot frees up first (no boxed
        // job per partition), and partials come back in partition order,
        // so the merge below is deterministic regardless of scheduling.
        let partials: Vec<BTreeMap<OrderedValue, Vec<Value>>> = mp_exec::WorkPool::global()
            .scatter_morsels(docs, chunk.max(1), |part| {
                let mut groups: BTreeMap<OrderedValue, Vec<Value>> = BTreeMap::new();
                for doc in part {
                    map(doc, &mut |k, v| {
                        groups.entry(OrderedValue(k)).or_default().push(v);
                    });
                }
                // Combiner: pre-reduce each key locally to shrink the
                // shuffle, as Hadoop combiners do.
                let mut combined: BTreeMap<OrderedValue, Vec<Value>> = BTreeMap::new();
                for (k, mut vs) in groups {
                    let v = if vs.len() == 1 {
                        vs.remove(0)
                    } else {
                        reduce(&k.0, &vs)
                    };
                    // mp-lint: allow(H002) — one singleton Vec per combined key is the combiner's output shape, not per-document scratch
                    combined.insert(k, vec![v]);
                }
                combined
            });

        // Shuffle: merge per-worker groups.
        let mut groups: BTreeMap<OrderedValue, Vec<Value>> = BTreeMap::new();
        for partial in partials {
            for (k, mut vs) in partial {
                groups.entry(k).or_default().append(&mut vs);
            }
        }
        let mut out = Vec::with_capacity(groups.len());
        for (k, mut vs) in groups {
            let reduced = if vs.len() == 1 {
                vs.remove(0)
            } else {
                reduce(&k.0, &vs)
            };
            out.push((k.0, reduced));
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "hadoop-parallel"
    }
}

/// Reduce function that must be associative + commutative for the
/// combiner optimization to be sound; a numeric sum qualifies.
pub fn sum_reduce(_key: &Value, values: &[Value]) -> Value {
    let total: f64 = values.iter().filter_map(Value::as_f64).sum();
    if total.fract() == 0.0 && total.abs() < 9e15 {
        Value::from(total as i64)
    } else {
        Value::from(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::to_docs;
    use serde_json::json;

    fn word_docs() -> crate::value::Docs {
        to_docs(vec![
            json!({"els": ["Li", "O"]}),
            json!({"els": ["Fe", "O"]}),
            json!({"els": ["Li", "Fe", "O"]}),
        ])
    }

    fn count_map(doc: &Value, emit: &mut dyn FnMut(Value, Value)) {
        if let Some(els) = doc["els"].as_array() {
            for e in els {
                emit(e.clone(), json!(1));
            }
        }
    }

    #[test]
    fn builtin_counts() {
        let eng = BuiltinEngine::default();
        let out = eng.run(&word_docs(), &count_map, &sum_reduce).unwrap();
        assert_eq!(
            out,
            vec![
                (json!("Fe"), json!(2)),
                (json!("Li"), json!(2)),
                (json!("O"), json!(3)),
            ]
        );
    }

    #[test]
    fn hadoop_matches_builtin() {
        let docs: crate::value::Docs = (0..500)
            .map(|i| Arc::new(json!({"els": [format!("E{}", i % 13)], "n": i})))
            .collect();
        let map = |doc: &Value, emit: &mut dyn FnMut(Value, Value)| {
            emit(doc["els"][0].clone(), doc["n"].clone());
        };
        let seq = BuiltinEngine::default()
            .run(&docs, &map, &sum_reduce)
            .unwrap();
        for workers in [1, 2, 4, 8] {
            let par = HadoopEngine::new(workers)
                .run(&docs, &map, &sum_reduce)
                .unwrap();
            assert_eq!(seq, par, "workers={workers}");
        }
    }

    #[test]
    fn single_value_keys_skip_reduce() {
        // Reduce must not be called for singleton groups (Mongo contract).
        let docs = to_docs(vec![json!({"k": "a"}), json!({"k": "b"})]);
        let map = |doc: &Value, emit: &mut dyn FnMut(Value, Value)| {
            emit(doc["k"].clone(), json!(1));
        };
        let panicky = |_k: &Value, _vs: &[Value]| -> Value { panic!("reduce called") };
        let out = BuiltinEngine::default().run(&docs, &map, &panicky).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_input() {
        let out = HadoopEngine::new(4)
            .run(&[], &count_map, &sum_reduce)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn group_best_pattern() {
        // The materials-view pattern: group tasks by mps_id, keep the one
        // with lowest energy.
        let docs = to_docs(vec![
            json!({"mps_id": 1, "energy": -3.0}),
            json!({"mps_id": 1, "energy": -5.0}),
            json!({"mps_id": 2, "energy": -1.0}),
        ]);
        let map = |doc: &Value, emit: &mut dyn FnMut(Value, Value)| {
            emit(doc["mps_id"].clone(), doc.clone());
        };
        let best = |_k: &Value, vs: &[Value]| -> Value {
            vs.iter()
                .min_by(|a, b| {
                    a["energy"]
                        .as_f64()
                        .unwrap()
                        .partial_cmp(&b["energy"].as_f64().unwrap())
                        .unwrap()
                })
                .cloned()
                .unwrap()
        };
        let out = HadoopEngine::new(2).run(&docs, &map, &best).unwrap();
        assert_eq!(out[0].1["energy"], json!(-5.0));
        assert_eq!(out[1].1["energy"], json!(-1.0));
    }
}

/// Pre-staged analytics input (§IV-B2): "efficiency can be gained by
/// pre-staging the MongoDB data to HDFS." A stage is an immutable,
/// shared snapshot of a collection taken once; repeated analytics jobs
/// run against it without re-extracting (and re-cloning) documents from
/// the live store each time. "MongoDB will continue to contain
/// references to the data" — the stage records its source collection
/// and document count for exactly that purpose.
pub struct HdfsStage {
    docs: std::sync::Arc<crate::value::Docs>,
    /// Source collection name (the reference kept in MongoDB).
    pub source: String,
    /// Store op-count at staging time (staleness diagnostics).
    pub staged_at_ops: u64,
}

impl HdfsStage {
    /// Extract a collection into the stage (the one-time transfer cost).
    pub fn from_collection(db: &crate::database::Database, collection: &str) -> Self {
        let docs = db.collection(collection).dump();
        HdfsStage {
            docs: std::sync::Arc::new(docs),
            source: collection.to_string(),
            staged_at_ops: db.profiler().total_ops(),
        }
    }

    /// Documents in the stage.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Is the stage empty?
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Run a MapReduce job against the staged data.
    pub fn run(
        &self,
        engine: &dyn MapReduce,
        map: &MapFn,
        reduce: &ReduceFn,
    ) -> Result<Vec<(Value, Value)>> {
        engine.run(&self.docs, map, reduce)
    }
}

#[cfg(test)]
mod hdfs_tests {
    use super::*;
    use crate::database::Database;
    use serde_json::json;

    #[test]
    fn stage_matches_live_results_until_writes() {
        let db = Database::new();
        let c = db.collection("tasks");
        for i in 0..50 {
            c.insert_one(json!({"grp": i % 5, "v": i})).unwrap();
        }
        let stage = HdfsStage::from_collection(&db, "tasks");
        assert_eq!(stage.len(), 50);

        let map = |d: &Value, emit: &mut dyn FnMut(Value, Value)| {
            emit(d["grp"].clone(), d["v"].clone());
        };
        let eng = BuiltinEngine::default();
        let live = eng.run(&c.dump(), &map, &sum_reduce).unwrap();
        let staged = stage.run(&eng, &map, &sum_reduce).unwrap();
        assert_eq!(live, staged);

        // The stage is a snapshot: later writes don't appear (MongoDB
        // keeps the authoritative data; the stage must be refreshed).
        c.insert_one(json!({"grp": 0, "v": 1000})).unwrap();
        let live2 = eng.run(&c.dump(), &map, &sum_reduce).unwrap();
        let staged2 = stage.run(&eng, &map, &sum_reduce).unwrap();
        assert_ne!(live2, staged2);
        assert_eq!(staged2, staged);
    }

    #[test]
    fn repeated_jobs_share_the_snapshot() {
        let db = Database::new();
        let c = db.collection("t");
        for i in 0..20 {
            c.insert_one(json!({"k": i % 3, "v": 1})).unwrap();
        }
        let stage = HdfsStage::from_collection(&db, "t");
        let map = |d: &Value, emit: &mut dyn FnMut(Value, Value)| {
            emit(d["k"].clone(), d["v"].clone());
        };
        let eng = HadoopEngine::new(2);
        // Ten jobs over one extraction; results all agree.
        let first = stage.run(&eng, &map, &sum_reduce).unwrap();
        for _ in 0..9 {
            assert_eq!(stage.run(&eng, &map, &sum_reduce).unwrap(), first);
        }
        assert_eq!(stage.source, "t");
    }
}
