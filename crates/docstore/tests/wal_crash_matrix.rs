//! Crash-point matrix for the write-ahead log: simulate a crash at
//! every byte boundary of the WAL and prove the two claims the
//! acknowledgment protocol makes:
//!
//! * **Acknowledged writes survive.** An op is acknowledged only after
//!   its frame is past the group-commit barrier; the recovered state at
//!   any crash point is exactly the prefix of frames the durable bytes
//!   fully contain — never fewer.
//! * **Unacknowledged writes never half-apply.** Replay applies a frame
//!   only if it is complete and its CRC32 verifies; a torn or corrupt
//!   frame truncates the replay point, so no partial document and no
//!   post-gap op is ever visible.
//!
//! Two sweeps over a reference WAL of acknowledged inserts: truncate
//! `journal.wal` at every byte length (a crash losing the tail), and
//! flip every single byte (media corruption mid-file). Sampled points
//! also write *after* recovery and reopen once more, proving the
//! replay point is physically truncated — appending after a torn tail
//! must not resurrect garbage between old and new frames.

use mp_docstore::{DurableDatabase, DurableOptions, Persister};
use serde_json::{json, Value};
use std::path::{Path, PathBuf};

/// Number of acknowledged writes in the reference WAL.
const OPS: usize = 6;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mp-wal-matrix-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The document acknowledged as write `i`.
fn doc(i: usize) -> Value {
    json!({"_id": format!("m{i}"), "seq": i, "payload": "x".repeat(8 + i)})
}

/// Build the reference store: `OPS` acknowledged single-document
/// inserts, returning the WAL length after each (the frame boundaries
/// every crash point is judged against).
fn build_reference(dir: &Path) -> Vec<u64> {
    let opts = DurableOptions {
        fsync: true,
        compact_after_bytes: None,
    };
    let d = DurableDatabase::open_with(dir, opts).unwrap();
    let mut bounds = Vec::with_capacity(OPS);
    for i in 0..OPS {
        d.insert_one("mats", doc(i)).unwrap();
        bounds.push(d.wal_len());
    }
    bounds
}

/// Copy `src` into a fresh `dst` (flat directory — the persister never
/// nests).
fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Assert the recovered store holds exactly acknowledged writes
/// `0..k`, each byte-for-byte intact.
fn assert_prefix(d: &DurableDatabase, k: usize, ctx: &str) {
    let mut docs = d.database().collection("mats").find(&json!({})).unwrap();
    docs.sort_by_key(|v| v["seq"].as_u64());
    assert_eq!(
        docs.len(),
        k,
        "{ctx}: expected the {k}-op prefix, got {docs:?}"
    );
    for (i, got) in docs.iter().enumerate() {
        assert_eq!(**got, doc(i), "{ctx}: op {i} half-applied or mangled");
    }
}

/// Number of reference frames fully contained in the first `len`
/// durable bytes.
fn frames_within(bounds: &[u64], len: u64) -> usize {
    bounds.iter().filter(|&&b| b <= len).count()
}

#[test]
fn truncation_at_every_byte_recovers_exactly_the_durable_prefix() {
    let base = tmpdir("trunc-base");
    let bounds = build_reference(&base);
    let total = *bounds.last().unwrap();
    let work = tmpdir("trunc-work");
    for len in 0..=total {
        copy_dir(&base, &work);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(work.join("journal.wal"))
            .unwrap();
        f.set_len(len).unwrap();
        drop(f);
        let ctx = format!("crash after {len}/{total} durable bytes");
        let k = frames_within(&bounds, len);
        let d =
            DurableDatabase::open(&work).unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        assert_prefix(&d, k, &ctx);
        // Sampled points: the store must stay writable after a torn
        // recovery, and the new write must not resurrect lost bytes.
        if len % 41 == 0 {
            d.insert_one("post", json!({"_id": "p", "at": len}))
                .unwrap();
            drop(d);
            let again = DurableDatabase::open(&work).unwrap();
            assert_prefix(&again, k, &ctx);
            assert_eq!(
                again.database().collection("post").len(),
                1,
                "{ctx}: post-recovery write lost"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn flipping_any_single_byte_truncates_replay_at_the_corrupt_frame() {
    let base = tmpdir("flip-base");
    let bounds = build_reference(&base);
    let total = *bounds.last().unwrap();
    let work = tmpdir("flip-work");
    for off in 0..total {
        copy_dir(&base, &work);
        let path = work.join("journal.wal");
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[off as usize] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let ctx = format!("byte {off}/{total} flipped");
        // Frames wholly before the flipped byte replay; the corrupt
        // frame and everything after it must not.
        let k = frames_within(&bounds, off);
        let d =
            DurableDatabase::open(&work).unwrap_or_else(|e| panic!("{ctx}: recovery failed: {e}"));
        assert_prefix(&d, k, &ctx);
    }
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn recovery_report_distinguishes_torn_tail_from_corruption() {
    let base = tmpdir("report");
    let bounds = build_reference(&base);
    let total = *bounds.last().unwrap();

    // Torn tail: half of the final frame is missing.
    let work = tmpdir("report-torn");
    copy_dir(&base, &work);
    let torn_at = (bounds[OPS - 2] + total) / 2;
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(work.join("journal.wal"))
        .unwrap();
    f.set_len(torn_at).unwrap();
    drop(f);
    let mut p = Persister::open(&work).unwrap();
    let (_, report) = p.recover_with_report().unwrap();
    assert_eq!(report.replayed_ops, OPS - 1);
    assert!(report.torn_tail.is_some(), "{report:?}");
    assert_eq!(report.replay_lsn, bounds[OPS - 2]);

    // Mid-file corruption: a payload byte of frame 1 is flipped, so
    // replay truncates there even though later frames are intact.
    let work2 = tmpdir("report-flip");
    copy_dir(&base, &work2);
    let path = work2.join("journal.wal");
    let mut bytes = std::fs::read(&path).unwrap();
    let inside_frame_1 = (bounds[0] + 9) as usize;
    bytes[inside_frame_1] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let mut p2 = Persister::open(&work2).unwrap();
    let (db, report2) = p2.recover_with_report().unwrap();
    assert_eq!(report2.replayed_ops, 1);
    assert!(report2.corruption.is_some(), "{report2:?}");
    assert_eq!(report2.replay_lsn, bounds[0]);
    assert_eq!(db.collection("mats").len(), 1);

    for d in [base, work, work2] {
        let _ = std::fs::remove_dir_all(d);
    }
}
