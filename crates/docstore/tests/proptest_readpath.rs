//! Property tests pinning the compiled read path to its naive oracles.
//!
//! [`FindOptions`] keeps the pre-compilation implementations
//! (`compare`, `apply_order`, `project_doc`) precisely so these tests
//! can diff the compiled forms ([`FindOptions::compile`] →
//! `CompiledFindOptions` / `CompiledProjection`) against them:
//!
//! * the compiled comparator orders exactly like the naive one over
//!   mixed-type sort keys (numbers vs strings vs null vs missing);
//! * compiled sort + skip + limit returns the identical window,
//!   including the edges (skip past the end, limit 0, limit past the
//!   end, both combined);
//! * the compiled projection — both the trie plan and the sequential
//!   fallback for numeric segments — emits byte-identical output for
//!   nested paths, missing fields, overlapping/duplicate paths, and
//!   paths through arrays.
//!
//! Documents are generated nested (objects, arrays, mixed scalar
//! leaves) so paths resolve, partially resolve, or miss entirely.

use mp_docstore::{FindOptions, SortDir};
use proptest::prelude::*;
use serde_json::{json, Map, Value};

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// Mixed scalar leaves: sorting keys of different types against each
/// other exercises `cmp_values`' cross-type total order.
fn leaf() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        (-40i64..40).prop_map(Value::from),
        (-8.0f64..8.0).prop_map(|f| json!(f)),
        "[a-c]{0,3}".prop_map(Value::from),
    ]
}

fn object_of(inner: impl Strategy<Value = Value> + 'static) -> impl Strategy<Value = Value> {
    prop::collection::vec(("[a-d]", inner), 0..4).prop_map(|pairs| {
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k, v);
        }
        Value::Object(m)
    })
}

/// A nested value: scalar, object of known-alphabet keys, or array.
/// Explicit depth levels stand in for `prop_recursive` (the shim has
/// no recursion combinator); three levels is enough for the generated
/// paths (max three segments) to fully resolve.
fn nested() -> impl Strategy<Value = Value> {
    let level0 = leaf().boxed();
    let level1 = prop_oneof![
        leaf(),
        object_of(level0.clone()),
        prop::collection::vec(level0, 0..3).prop_map(Value::Array),
    ]
    .boxed();
    prop_oneof![
        leaf(),
        object_of(level1.clone()),
        prop::collection::vec(level1, 0..3).prop_map(Value::Array),
    ]
}

/// A document: an object whose top-level keys come from the same
/// alphabet the generated paths use, so paths hit, partially hit, or
/// miss. `_id` is present half the time (projection always includes it
/// when present).
fn document() -> impl Strategy<Value = Value> {
    (
        prop::collection::vec(("[a-d]", nested()), 0..5),
        prop_oneof![Just(None), "[a-z]{1,6}".prop_map(Some)],
    )
        .prop_map(|(pairs, id)| {
            let mut m = Map::new();
            if let Some(id) = id {
                m.insert("_id".to_string(), Value::String(id));
            }
            for (k, v) in pairs {
                m.insert(k, v);
            }
            Value::Object(m)
        })
}

/// A dotted path over the document alphabet, with numeric segments (to
/// force the sequential projection fallback) and a never-present key.
fn path() -> impl Strategy<Value = Value> {
    prop::collection::vec(
        prop_oneof![
            Just("a"),
            Just("b"),
            Just("c"),
            Just("d"),
            Just("0"),
            Just("1"),
            Just("zz"),
        ],
        1..4,
    )
    .prop_map(|segs| Value::String(segs.join(".")))
}

fn path_string() -> impl Strategy<Value = String> {
    path().prop_map(|v| v.as_str().unwrap().to_string())
}

fn sort_spec() -> impl Strategy<Value = Vec<(String, SortDir)>> {
    prop::collection::vec(
        (
            path_string(),
            prop_oneof![Just(SortDir::Asc), Just(SortDir::Desc)],
        ),
        0..3,
    )
}

/// FindOptions with edge-heavy skip/limit: the ranges comfortably
/// exceed the generated collection size, so skip==len, skip>len,
/// limit 0, and limit>len all occur.
fn options() -> impl Strategy<Value = FindOptions> {
    (
        sort_spec(),
        0usize..40,
        prop_oneof![Just(None), (0usize..40).prop_map(Some)],
        prop_oneof![
            Just(None),
            prop::collection::vec(path_string(), 0..4).prop_map(Some)
        ],
    )
        .prop_map(|(sort, skip, limit, projection)| FindOptions {
            sort,
            skip,
            limit,
            projection,
        })
}

fn byte_identical(a: &[Value], b: &[Value]) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        serde_json::to_string(&a.to_vec()).unwrap(),
        serde_json::to_string(&b.to_vec()).unwrap()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The compiled comparator agrees with the naive one on every pair,
    /// including mixed-type and missing keys, in both directions.
    #[test]
    fn compiled_comparator_matches_naive(
        a in document(),
        b in document(),
        sort in sort_spec(),
    ) {
        let opts = FindOptions { sort, ..FindOptions::all() };
        let copts = opts.compile();
        prop_assert_eq!(copts.cmp_docs(&a, &b), opts.compare(&a, &b));
        prop_assert_eq!(copts.cmp_docs(&b, &a), opts.compare(&b, &a));
    }

    /// Compiled sort + skip + limit produces the identical result
    /// window (content *and* order) to the naive reference.
    #[test]
    fn compiled_order_matches_naive(
        docs in prop::collection::vec(document(), 0..30),
        opts in options(),
    ) {
        let copts = opts.compile();
        let mut naive = docs.clone();
        let mut compiled = docs;
        opts.apply_order(&mut naive);
        copts.apply_order(&mut compiled);
        byte_identical(&compiled, &naive)?;
    }

    /// The compiled projection is byte-identical to the naive
    /// `project_doc` on every document — nested paths, missing fields,
    /// duplicate and overlapping paths, and numeric segments (the
    /// sequential-fallback strategy) alike.
    #[test]
    fn compiled_projection_matches_naive(
        docs in prop::collection::vec(document(), 0..20),
        paths in prop::collection::vec(path_string(), 0..4),
    ) {
        let opts = FindOptions::all().project(
            &paths.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let copts = opts.compile();
        let proj = copts.projection().expect("projection compiled");
        let compiled: Vec<Value> = docs.iter().map(|d| proj.project_one(d)).collect();
        let naive: Vec<Value> = docs.iter().map(|d| opts.project_doc(d)).collect();
        byte_identical(&compiled, &naive)?;
    }

    /// End to end: the full compiled pipeline (sort, skip, limit, then
    /// project) equals the naive pipeline on the same input.
    #[test]
    fn compiled_pipeline_matches_naive(
        docs in prop::collection::vec(document(), 0..25),
        opts in options(),
    ) {
        let copts = opts.compile();

        let mut naive = docs.clone();
        opts.apply_order(&mut naive);
        if opts.projection.is_some() {
            naive = naive.iter().map(|d| opts.project_doc(d)).collect();
        }

        let mut compiled = docs;
        copts.apply_order(&mut compiled);
        if let Some(proj) = copts.projection() {
            compiled = compiled.iter().map(|d| proj.project_one(d)).collect();
        }

        byte_identical(&compiled, &naive)?;
    }
}
