//! Read-path equivalence and isolation tests for the zero-copy refactor.
//!
//! The store hands out shared `Arc<Document>` handles and matches through
//! pre-compiled filters. These tests pin down the two guarantees that
//! refactor must preserve:
//!
//! 1. **Equivalence** — the Arc/compiled read path returns *byte-identical*
//!    results (content and order) to a naive reference implementation that
//!    deep-clones every document and matches through a freshly parsed,
//!    uncompiled [`Filter`], across generated filters, sorts, skip/limit
//!    windows, and projections.
//! 2. **Isolation** — documents returned from a query are immutable
//!    snapshots: later writes to the store are never visible through a
//!    held handle, and holding a handle never blocks or corrupts later
//!    writes.

use mp_docstore::{Collection, Database, Filter, FindOptions, SortDir};
use proptest::prelude::*;
use serde_json::{json, Value};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Reference implementation: the pre-refactor clone-based read path.
// ---------------------------------------------------------------------------

/// What `find_with` did before documents became shared: deep-copy the whole
/// collection, keep what an *uncompiled* filter matches, then order and
/// project the owned values.
fn reference_find(coll: &Collection, filter: &Value, opts: &FindOptions) -> Vec<Value> {
    let mut owned: Vec<Value> = Vec::new();
    for d in coll.dump() {
        // Deliberate deep copy: this function *is* the clone-based baseline.
        owned.push((*d).clone());
    }
    let f = Filter::parse(filter).expect("reference filter parse");
    // mp-lint: allow(P003) — the baseline is deliberately uncompiled.
    owned.retain(|d| f.matches(d));
    opts.apply_order(&mut owned);
    if opts.projection.is_some() {
        owned = owned.iter().map(|d| opts.project_doc(d)).collect();
    }
    owned
}

/// Byte-identical comparison: serialize both sides and compare the strings,
/// so field order, number formatting, and result order all participate.
fn assert_byte_identical(engine: &[Arc<Value>], reference: &[Value]) -> Result<(), TestCaseError> {
    let e = serde_json::to_string(&engine.to_vec()).unwrap();
    let r = serde_json::to_string(&reference.to_vec()).unwrap();
    prop_assert_eq!(e, r);
    Ok(())
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        (-50i64..50).prop_map(Value::from),
        "[a-z]{0,4}".prop_map(Value::from),
    ]
}

fn document() -> impl Strategy<Value = Value> {
    (
        scalar(),
        -50i64..50,
        prop::collection::vec("[a-z]{1,3}", 0..3),
        scalar(),
    )
        .prop_map(|(a, n, tags, x)| {
            json!({
                "a": a,
                "n": n,
                "tags": tags,
                "sub": {"x": x},
            })
        })
}

/// A filter drawn from the operator families the store supports, kept in
/// ranges that actually select interesting subsets of `document()`.
fn filter() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(json!({})),
        (-50i64..50).prop_map(|v| json!({"n": v})),
        (-50i64..50).prop_map(|v| json!({"n": {"$gte": v}})),
        (-50i64..50).prop_map(|v| json!({"n": {"$lt": v}})),
        ((-50i64..50), (0i64..30)).prop_map(|(lo, w)| json!({"n": {"$gte": lo, "$lte": lo + w}})),
        prop::collection::vec(-50i64..50, 1..4).prop_map(|vs| json!({"n": {"$in": vs}})),
        "[a-z]{1,3}".prop_map(|t| json!({"tags": t})),
        scalar().prop_map(|v| json!({"sub.x": v})),
        ((-50i64..50), "[a-z]{1,3}")
            .prop_map(|(v, t)| json!({"$or": [{"n": {"$lt": v}}, {"tags": t}]})),
    ]
}

/// Build `FindOptions` from plain generated scalars (the proptest shim has
/// no `prop::option::of`). `sort_sel`/`proj_sel` pick one of a few shapes.
fn build_options(sort_sel: u8, skip: usize, limit_sel: usize, proj_sel: u8) -> FindOptions {
    let mut opts = FindOptions::all();
    opts = match sort_sel % 4 {
        0 => opts,
        1 => opts.sort_by("n", SortDir::Asc),
        2 => opts.sort_by("n", SortDir::Desc).sort_by("a", SortDir::Asc),
        _ => opts
            .sort_by("sub.x", SortDir::Asc)
            .sort_by("n", SortDir::Desc),
    };
    opts = opts.skip(skip);
    if limit_sel > 0 {
        opts = opts.limit(limit_sel);
    }
    match proj_sel % 3 {
        0 => opts,
        1 => opts.project(&["n"]),
        _ => opts.project(&["n", "sub.x", "tags"]),
    }
}

// ---------------------------------------------------------------------------
// Equivalence properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Unindexed collections scan in document-id order — the same order
    /// `dump` walks — so the shared-ownership path must agree with the
    /// clone-based reference byte for byte, order included, even without
    /// a sort.
    #[test]
    fn arc_path_matches_clone_reference(
        docs in prop::collection::vec(document(), 0..30),
        q in filter(),
        sort_sel in 0u8..4,
        skip in 0usize..6,
        limit_sel in 0usize..10,
        proj_sel in 0u8..3,
    ) {
        let db = Database::new();
        let coll = db.collection("c");
        coll.insert_many(docs).unwrap();
        let opts = build_options(sort_sel, skip, limit_sel, proj_sel);

        let engine = coll.find_with(&q, &opts).unwrap();
        let reference = reference_find(&coll, &q, &opts);
        assert_byte_identical(&engine, &reference)?;
    }

    /// With a secondary index the pre-sort candidate order may legally be
    /// index order, so pin a total sort (unique `_id` tiebreak) and demand
    /// byte-identical output through the index-accelerated plan too.
    #[test]
    fn indexed_arc_path_matches_clone_reference(
        docs in prop::collection::vec(document(), 0..30),
        q in filter(),
        skip in 0usize..6,
        limit_sel in 0usize..10,
        proj_sel in 0u8..3,
    ) {
        let db = Database::new();
        let coll = db.collection("c");
        coll.create_index("n", false).unwrap();
        coll.insert_many(docs).unwrap();
        let mut opts = FindOptions::all()
            .sort_by("n", SortDir::Asc)
            .sort_by("_id", SortDir::Asc)
            .skip(skip);
        if limit_sel > 0 {
            opts = opts.limit(limit_sel);
        }
        if proj_sel % 3 == 1 {
            opts = opts.project(&["n"]);
        } else if proj_sel % 3 == 2 {
            opts = opts.project(&["n", "sub.x", "tags"]);
        }

        let engine = coll.find_with(&q, &opts).unwrap();
        let reference = reference_find(&coll, &q, &opts);
        assert_byte_identical(&engine, &reference)?;
    }

    /// The compiled filter agrees with the uncompiled matcher on every
    /// generated (filter, document) pair — the per-call contract under
    /// the set-level properties above.
    #[test]
    fn compiled_matches_agrees_with_uncompiled(doc in document(), q in filter()) {
        let f = Filter::parse(&q).unwrap();
        let cf = f.compile();
        prop_assert_eq!(cf.matches(&doc), f.matches(&doc));
    }
}

// ---------------------------------------------------------------------------
// Mutation isolation
// ---------------------------------------------------------------------------

/// A result set is a snapshot: updates, deletes, and inserts that happen
/// after `find` returns are invisible through the held handles.
#[test]
fn held_results_do_not_observe_later_writes() {
    let db = Database::new();
    let coll = db.collection("c");
    coll.insert_many((0..20).map(|i| json!({"i": i, "state": "READY"})).collect())
        .unwrap();

    let held = coll.find(&json!({"state": "READY"})).unwrap();
    assert_eq!(held.len(), 20);
    let before = serde_json::to_string(&held).unwrap();

    // Mutate every document, delete half, add new ones.
    coll.update_many(
        &json!({}),
        &json!({"$set": {"state": "RUNNING", "extra": true}}),
    )
    .unwrap();
    coll.delete_many(&json!({"i": {"$lt": 10}})).unwrap();
    coll.insert_one(json!({"i": 99, "state": "READY"})).unwrap();

    // The held snapshot is bit-for-bit what it was at query time...
    assert_eq!(serde_json::to_string(&held).unwrap(), before);
    for d in &held {
        assert_eq!(d["state"], json!("READY"));
        assert!(d.get("extra").is_none());
    }
    // ...while the store itself moved on.
    assert_eq!(coll.count(&json!({"state": "RUNNING"})).unwrap(), 10);
    assert_eq!(coll.count(&json!({"state": "READY"})).unwrap(), 1);
}

/// Copy-on-write means an update must not mutate the stored document in
/// place even when a reader still shares it; and dropping reader handles
/// afterwards must leave the store intact.
#[test]
fn cow_updates_replace_rather_than_mutate() {
    let db = Database::new();
    let coll = db.collection("c");
    let id = coll.insert_one(json!({"v": 1})).unwrap();

    let before = coll.get(&id).unwrap();
    coll.update_one(&json!({"_id": id.clone()}), &json!({"$inc": {"v": 41}}))
        .unwrap();
    let after = coll.get(&id).unwrap();

    // Distinct allocations: the write replaced the Arc, it did not write
    // through it.
    assert!(!Arc::ptr_eq(&before, &after));
    assert_eq!(before["v"], json!(1));
    assert_eq!(after["v"], json!(42));

    drop(before);
    assert_eq!(coll.get(&id).unwrap()["v"], json!(42));
}

/// Handles returned while other readers exist never alias writable state:
/// a full clear with outstanding handles leaves those handles intact.
#[test]
fn clear_with_outstanding_handles_is_safe() {
    let db = Database::new();
    let coll = db.collection("c");
    coll.insert_many((0..5).map(|i| json!({"i": i})).collect())
        .unwrap();
    let held = coll.find(&json!({})).unwrap();
    coll.clear();
    assert_eq!(coll.len(), 0);
    assert_eq!(held.len(), 5);
    let is: Vec<i64> = held.iter().map(|d| d["i"].as_i64().unwrap()).collect();
    assert_eq!(is, vec![0, 1, 2, 3, 4]);
}
