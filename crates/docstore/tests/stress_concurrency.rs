//! Concurrency stress tests — bounded, deterministic invariants under
//! real OS threads (no loom). These run in the ordinary `cargo test`
//! suite and double as the curated TSan subset: iteration counts are
//! reduced under `--cfg tsan` so instrumented builds stay fast.

use mp_docstore::{Database, FindOptions, ShardedCluster, SortDir, StoreError};
use serde_json::json;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread;

const THREADS: usize = 12;

/// Per-thread iteration budget: trimmed under sanitizers, where every
/// memory access costs an order of magnitude more.
fn iters(full: usize) -> usize {
    if cfg!(tsan) {
        (full / 8).max(4)
    } else {
        full
    }
}

/// Every insert from every thread lands: no lost updates under
/// contention on one collection's write lock.
#[test]
fn concurrent_inserts_are_all_retained() {
    let db = Arc::new(Database::new());
    let per_thread = iters(50);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            thread::spawn(move || {
                for i in 0..per_thread {
                    db.collection("stable")
                        .insert_one(json!({"t": t, "i": i}))
                        .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.collection("stable").len(), THREADS * per_thread);
}

/// A unique index under an insert storm admits exactly one winner per
/// key; every loser gets `DuplicateKey`, never a torn half-insert.
#[test]
fn unique_index_admits_one_winner_per_key() {
    let db = Arc::new(Database::new());
    let coll = db.collection("elections");
    coll.create_index("key", true).unwrap();
    let keys = iters(24);
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = db.clone();
            thread::spawn(move || {
                let mut won = 0usize;
                for k in 0..keys {
                    match db
                        .collection("elections")
                        .insert_one(json!({"key": format!("k{k}"), "by": t}))
                    {
                        Ok(_) => won += 1,
                        Err(StoreError::DuplicateKey(_)) => {}
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                won
            })
        })
        .collect();
    let total_wins: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total_wins, keys, "each key has exactly one winner");
    assert_eq!(db.collection("elections").len(), keys);
}

/// `find_one_and_update` as a queue-pop primitive: N READY documents,
/// many claiming threads, every document claimed exactly once.
#[test]
fn find_one_and_update_claims_each_doc_once() {
    let db = Arc::new(Database::new());
    let coll = db.collection("queue");
    coll.create_index("state", false).unwrap();
    let n = iters(96);
    for i in 0..n {
        coll.insert_one(json!({"_id": format!("job-{i:03}"), "state": "READY"}))
            .unwrap();
    }
    let sort = FindOptions::default().sort_by("_id", SortDir::Asc);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = db.clone();
            let sort = sort.clone();
            thread::spawn(move || {
                let mut claimed = Vec::new();
                while let Some(doc) = db
                    .collection("queue")
                    .find_one_and_update(
                        &json!({"state": "READY"}),
                        &json!({"$set": {"state": "RUNNING"}}),
                        Some(&sort),
                        true,
                    )
                    .unwrap()
                {
                    claimed.push(doc["_id"].as_str().unwrap().to_string());
                }
                claimed
            })
        })
        .collect();
    let mut all: Vec<String> = Vec::new();
    for h in handles {
        all.extend(h.join().unwrap());
    }
    assert_eq!(all.len(), n, "every job claimed");
    let unique: BTreeSet<_> = all.iter().collect();
    assert_eq!(unique.len(), n, "no job claimed twice");
    assert_eq!(
        db.collection("queue")
            .count(&json!({"state": "RUNNING"}))
            .unwrap(),
        n
    );
}

/// Writers racing readers on a sharded cluster while it rebalances onto
/// new shards: the final scatter count equals total inserts and routing
/// still targets one copy per document.
#[test]
fn sharded_rebalance_under_write_read_storm() {
    let n_docs = iters(64);
    let small = ShardedCluster::new(2, "mid");
    for i in 0..n_docs {
        small
            .insert_one("tasks", json!({"mid": format!("mp-{i}"), "i": i}))
            .unwrap();
    }
    let mut shards: Vec<Database> = (0..small.num_shards())
        .map(|i| small.shard(i).clone())
        .collect();
    shards.push(Database::new());
    shards.push(Database::new());
    let big = Arc::new(ShardedCluster::from_shards(shards, "mid"));

    let mover = {
        let big = big.clone();
        thread::spawn(move || big.rebalance("tasks").unwrap())
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let big = big.clone();
            thread::spawn(move || {
                for _ in 0..iters(16) {
                    // Insert-before-delete migration: never undercounts.
                    assert!(big.count("tasks", &json!({})).unwrap() >= n_docs);
                }
            })
        })
        .collect();
    mover.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(big.count("tasks", &json!({})).unwrap(), n_docs);
    for i in 0..n_docs {
        assert_eq!(
            big.find("tasks", &json!({"mid": format!("mp-{i}")}))
                .unwrap()
                .len(),
            1
        );
    }
}
