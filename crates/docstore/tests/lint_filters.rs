//! Property test tying the static analyzer to the runtime matcher: any
//! filter mp-lint reports no diagnostics for must parse and must never
//! panic in `Filter::matches`, against arbitrary documents. (mp-lint is a
//! dev-dependency here — a dev-only cycle cargo allows.)

use mp_docstore::Filter;
use mp_lint::{analyze_query, analyze_query_with_schema, CollectionSchema, TypeSet};
use proptest::prelude::*;
use serde_json::{json, Value};

/// Strategy: a small scalar JSON value.
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        (-50i64..50).prop_map(Value::from),
        (-10.0f64..10.0).prop_map(|f| json!(f)),
        "[a-z]{0,6}".prop_map(Value::from),
    ]
}

/// Strategy: one field predicate — a literal equality or an operator doc.
fn predicate() -> impl Strategy<Value = Value> {
    prop_oneof![
        scalar(),
        scalar().prop_map(|v| json!({ "$gt": v })),
        scalar().prop_map(|v| json!({ "$lte": v })),
        (scalar(), scalar()).prop_map(|(a, b)| json!({"$gte": a, "$lt": b})),
        prop::collection::vec(scalar(), 0..3).prop_map(|vs| json!({ "$in": vs })),
        any::<bool>().prop_map(|b| json!({ "$exists": b })),
        (0usize..4).prop_map(|n| json!({ "$size": n })),
        scalar().prop_map(|v| json!({"$not": {"$eq": v}})),
    ]
}

/// Strategy: a conjunction over a handful of field names.
fn field_conj() -> impl Strategy<Value = Value> {
    prop::collection::btree_map(
        prop_oneof![
            Just("a".to_string()),
            Just("n".to_string()),
            Just("tags".to_string()),
            Just("nested.k".to_string())
        ],
        predicate(),
        0..3,
    )
    .prop_map(|m| Value::Object(m.into_iter().collect()))
}

/// Strategy: a filter, possibly with a `$or` branch.
fn filter() -> impl Strategy<Value = Value> {
    (field_conj(), prop::collection::vec(field_conj(), 0..2)).prop_map(|(base, ors)| {
        let mut out = base;
        if !ors.is_empty() {
            out["$or"] = Value::Array(ors);
        }
        out
    })
}

/// Strategy: a document shaped like what the filters above touch.
fn document() -> impl Strategy<Value = Value> {
    (
        scalar(),
        -50i64..50,
        prop::collection::vec("[a-z]{1,3}", 0..3),
        scalar(),
    )
        .prop_map(|(a, n, tags, k)| {
            json!({
                "a": a,
                "n": n,
                "tags": tags,
                "nested": {"k": k},
            })
        })
}

proptest! {
    /// Filters the schema-free analyzer passes clean must parse and match
    /// without panicking.
    #[test]
    fn lint_clean_filters_never_panic(q in filter(), doc in document()) {
        let diags = analyze_query(&q);
        // Q000 means the filter does not parse ($or: [] is generated
        // sometimes); everything else must parse.
        if diags.iter().any(|d| d.code == "Q000") {
            prop_assert!(Filter::parse(&q).is_err());
            return Ok(());
        }
        let f = Filter::parse(&q).expect("lint found no parse errors");
        let _ = f.matches(&doc); // must not panic, any verdict is fine
        let _ = f.touched_paths();
    }

    /// Error-severity contradictions really are always-false at runtime.
    #[test]
    fn contradictions_never_match(lo in -50i64..50, span in 1i64..20, doc in document()) {
        let q = json!({"n": {"$gt": lo + span, "$lt": lo}});
        let diags = analyze_query(&q);
        prop_assert!(diags.iter().any(|d| d.code == "Q002"), "{diags:?}");
        prop_assert!(!Filter::parse(&q).expect("parses").matches(&doc));
    }

    /// Schema-aware type-mismatch errors imply zero matches against
    /// documents that conform to the schema.
    #[test]
    fn type_mismatches_never_match_conforming_docs(s in "[a-z]{1,6}", doc in document()) {
        let schema = CollectionSchema {
            sampled: 1,
            total_docs: 1,
            ..CollectionSchema::with_fields(
                "c",
                [("n", TypeSet::INT)],
                ["n"],
            )
        };
        // `n` is an int field in both schema and generated documents, so a
        // string comparison is flagged and never matches.
        let q = json!({"n": {"$gt": s}});
        let diags = analyze_query_with_schema(&q, &schema, &std::collections::BTreeMap::new());
        prop_assert!(diags.iter().any(|d| d.code == "Q001"), "{diags:?}");
        prop_assert!(!Filter::parse(&q).expect("parses").matches(&doc));
    }
}
