//! Property test for the write-ahead journal: any sequence of
//! mutations through the public [`DurableDatabase`] API must leave the
//! journal in a state whose replay reproduces the live database —
//! collection by collection, document by document, index by index.
//!
//! No external proptest dependency: a seeded xorshift64* generator
//! drives random op sequences, so failures are reproducible from the
//! printed seed alone.

use mp_docstore::{Database, DurableDatabase, FindOptions, SortDir};
use serde_json::{json, Value};
use std::path::PathBuf;

/// xorshift64* — deterministic, no deps, good enough to shuffle ops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

const COLLECTIONS: &[&str] = &["alpha", "beta", "gamma"];
const TAGS: &[&str] = &["li", "fe", "o2", "po4"];

fn random_doc(rng: &mut Rng) -> Value {
    let mut doc = json!({
        "k": rng.below(5),
        "n": rng.below(100),
        "tag": *rng.pick(TAGS),
    });
    // Half the documents carry an explicit small _id so that duplicate
    // inserts, id-targeted updates, and unique-index conflicts all
    // actually happen; the rest exercise id auto-assignment.
    if rng.below(2) == 0 {
        doc["_id"] = json!(format!("d{}", rng.below(40)));
    }
    doc
}

fn random_filter(rng: &mut Rng) -> Value {
    match rng.below(4) {
        0 => json!({"k": rng.below(5)}),
        1 => json!({"_id": format!("d{}", rng.below(40))}),
        2 => json!({"tag": *rng.pick(TAGS)}),
        _ => json!({"n": {"$lte": rng.below(100)}}),
    }
}

fn random_update(rng: &mut Rng) -> Value {
    match rng.below(5) {
        0 => json!({"$set": {"k": rng.below(5)}}),
        1 => json!({"$inc": {"n": 1}}),
        2 => json!({"$unset": {"tag": 1}}),
        3 => json!({"$push": {"hist": rng.below(10)}}),
        _ => json!({"$set": {"tag": *rng.pick(TAGS)}}),
    }
}

/// One random mutation through the public API. Ops that legitimately
/// fail (duplicate `_id`, unique-index conflict, dropping a missing
/// index) are ignored — a failed op must journal nothing, which is
/// exactly what the end-state comparison verifies.
fn random_op(rng: &mut Rng, d: &DurableDatabase) {
    let c = *rng.pick(COLLECTIONS);
    match rng.below(13) {
        0..=2 => {
            let _ = d.insert_one(c, random_doc(rng));
        }
        3 => {
            let docs = (0..rng.below(4) + 1).map(|_| random_doc(rng)).collect();
            let _ = d.insert_many(c, docs);
        }
        4 => {
            let _ = d.update_one(c, &random_filter(rng), &random_update(rng));
        }
        5 => {
            let _ = d.update_many(c, &random_filter(rng), &random_update(rng));
        }
        6 => {
            let _ = d.upsert(c, &random_filter(rng), &random_update(rng));
        }
        7 => {
            let opts = FindOptions::all().sort_by("n", SortDir::Desc);
            let _ = d.find_one_and_update(
                c,
                &random_filter(rng),
                &random_update(rng),
                Some(&opts),
                true,
            );
        }
        8 => {
            let _ = d.delete_one(c, &random_filter(rng));
        }
        9 => {
            let _ = d.delete_many(c, &random_filter(rng));
        }
        10 => match rng.below(4) {
            0 => {
                let _ = d.create_index(c, "k", false);
            }
            1 => {
                let _ = d.create_index(c, "tag", false);
            }
            2 => {
                // Unique index: only committable while `_id`s happen to
                // be distinct in `k` — conflict is the interesting case.
                let _ = d.create_index(c, "n", true);
            }
            _ => {
                let _ = d.drop_index(c, "k");
            }
        },
        11 => {
            if rng.below(8) == 0 {
                let _ = d.drop_collection(c);
            } else {
                let _ = d.clear(c);
            }
        }
        _ => {
            if rng.below(4) == 0 {
                d.checkpoint().unwrap();
            } else {
                let _ = d.insert_one(c, random_doc(rng));
            }
        }
    }
}

/// (collection name, sorted index specs, documents in DocId order).
type CollectionState = (String, Vec<(String, bool)>, Vec<Value>);

/// Observable state for every collection with any documents or
/// indexes. Empty index-less collections are excluded: read-path
/// access creates them lazily in the live map, and an op that modified
/// nothing journals nothing — by design only *state* is durable, not
/// map entries.
fn state_of(db: &Database) -> Vec<CollectionState> {
    let mut names = db.collection_names();
    names.sort();
    names
        .into_iter()
        .filter_map(|name| {
            let c = db.collection(&name);
            let mut specs = c.index_specs();
            specs.sort();
            // mp-lint: allow(P002) — the whole point is a deep equality
            // snapshot of every document; this is a test-only boundary.
            let docs: Vec<Value> = c.dump().iter().map(|d| (**d).clone()).collect();
            if docs.is_empty() && specs.is_empty() {
                None
            } else {
                Some((name, specs, docs))
            }
        })
        .collect()
}

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mp-durable-replay-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn replay_round_trips(seed: u64, ops: usize, checkpoint_at_end: bool) {
    let dir = tmpdir(&format!("s{seed}"));
    let mut rng = Rng::new(seed);
    let live = {
        let d = DurableDatabase::open(&dir).unwrap_or_else(|e| panic!("seed {seed}: open: {e}"));
        for _ in 0..ops {
            random_op(&mut rng, &d);
        }
        if checkpoint_at_end {
            d.checkpoint().unwrap();
        }
        state_of(d.database())
    };
    let reopened =
        DurableDatabase::open(&dir).unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
    let replayed = state_of(reopened.database());
    assert_eq!(
        replayed, live,
        "seed {seed}: journal replay diverged from live state"
    );
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn random_mutation_sequences_replay_to_the_live_state() {
    for seed in [1, 2, 3, 0xDEAD_BEEF, 0xCAFE_F00D, 42, 4242, 777] {
        replay_round_trips(seed, 300, false);
    }
}

#[test]
fn random_mutation_sequences_with_final_checkpoint_replay_identically() {
    for seed in [5, 6, 0xFACE_FEED] {
        replay_round_trips(seed, 200, true);
    }
}

#[test]
fn replay_is_idempotent_across_repeated_reopens() {
    let dir = tmpdir("idem");
    let mut rng = Rng::new(99);
    {
        let d = DurableDatabase::open(&dir).unwrap();
        for _ in 0..150 {
            random_op(&mut rng, &d);
        }
    }
    // Reopening without mutating must not change what the next
    // recovery sees: open N times, state is a fixed point.
    let first = state_of(DurableDatabase::open(&dir).unwrap().database());
    for _ in 0..3 {
        let again = state_of(DurableDatabase::open(&dir).unwrap().database());
        assert_eq!(again, first);
    }
    let _ = std::fs::remove_dir_all(dir);
}
