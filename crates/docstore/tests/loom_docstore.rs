//! Loom model-checking of the docstore's core interleavings.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; each body runs under
//! `loom::model`, which explores thread interleavings (the vendored
//! shim drives a seeded randomized scheduler for `LOOM_ITERS`
//! iterations). Invariants here are the ones the mp-sync rank table is
//! supposed to guarantee: no lost updates, no torn reads, document
//! counts conserved across structural operations.
#![cfg(loom)]

use loom::thread;
use mp_docstore::{Database, ReadPreference, ReplicaSet, ShardedCluster};
use serde_json::json;
use std::sync::Arc;

/// Concurrent upsert, point read, and index rebuild on one collection:
/// the read sees either the old or the new value (never a tear), and
/// after the join the update won and the rebuilt index serves it.
#[test]
fn collection_upsert_read_index_rebuild() {
    loom::model(|| {
        let db = Arc::new(Database::new());
        let coll = db.collection("materials");
        coll.insert_one(json!({"_id": "k", "v": 0})).unwrap();

        let writer = {
            let db = db.clone();
            thread::spawn(move || {
                db.collection("materials")
                    .upsert(&json!({"_id": "k"}), &json!({"$set": {"v": 1}}))
                    .unwrap();
            })
        };
        let indexer = {
            let db = db.clone();
            thread::spawn(move || {
                db.collection("materials").create_index("v", false).unwrap();
            })
        };

        let seen = db
            .collection("materials")
            .find_one(&json!({"_id": "k"}))
            .unwrap()
            .unwrap();
        let v = seen["v"].as_i64().unwrap();
        assert!(v == 0 || v == 1, "torn read: v={v}");

        writer.join().unwrap();
        indexer.join().unwrap();

        let coll = db.collection("materials");
        assert_eq!(coll.len(), 1);
        let after = coll.find_one(&json!({"_id": "k"})).unwrap().unwrap();
        assert_eq!(after["v"], json!(1), "upsert lost");
        assert_eq!(coll.find(&json!({"v": 1})).unwrap().len(), 1);
    });
}

/// Snapshot scan racing a copy-on-write update. The scan clones `Arc`
/// handles under the collection lock and matches outside it; the update
/// replaces documents rather than writing through them. So every
/// document a reader holds must be internally consistent (`a == b`,
/// never torn), and nothing the writer does afterwards may show through
/// handles the reader already obtained.
#[test]
fn snapshot_scan_vs_cow_update() {
    loom::model(|| {
        let db = Arc::new(Database::new());
        let coll = db.collection("m");
        for i in 0..3 {
            coll.insert_one(json!({"_id": format!("d{i}"), "a": 0, "b": 0}))
                .unwrap();
        }

        let writer = {
            let db = db.clone();
            thread::spawn(move || {
                db.collection("m")
                    .update_many(&json!({}), &json!({"$set": {"a": 1, "b": 1}}))
                    .unwrap();
            })
        };

        let held = db.collection("m").find(&json!({})).unwrap();
        assert_eq!(held.len(), 3);
        for d in &held {
            assert_eq!(d["a"], d["b"], "torn document: {d}");
        }
        let frozen: Vec<i64> = held.iter().map(|d| d["a"].as_i64().unwrap()).collect();

        writer.join().unwrap();

        // The writer finished, but the snapshot the reader holds is
        // immutable: re-reading the same handles yields the same bytes.
        let now: Vec<i64> = held.iter().map(|d| d["a"].as_i64().unwrap()).collect();
        assert_eq!(frozen, now, "held snapshot mutated by a later write");
        for d in db.collection("m").find(&json!({})).unwrap() {
            assert_eq!(d["a"], json!(1));
            assert_eq!(d["b"], json!(1));
        }
    });
}

/// Two threads race `Database::collection` on a name that does not
/// exist yet: the read-probe/write-upgrade in `collection` must yield
/// one shared instance, so both inserts land in the same collection.
#[test]
fn collection_creation_race_yields_single_instance() {
    loom::model(|| {
        let db = Arc::new(Database::new());
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let db = db.clone();
                thread::spawn(move || {
                    db.collection("racy").insert_one(json!({"i": i})).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(db.collection("racy").len(), 2, "insert lost to a twin");
        let names = db.collection_names();
        assert_eq!(names.iter().filter(|n| n.as_str() == "racy").count(), 1);
    });
}

/// Cluster growth: rebalance migrates documents onto new shards while a
/// scatter query runs. Rebalance inserts at the destination before
/// deleting at the source, so a concurrent scatter may double-count but
/// can never *under*-count; after the join the count is exact and every
/// targeted read routes to exactly one copy.
#[test]
fn shard_rebalance_vs_scatter_query() {
    const N: usize = 6;
    loom::model(|| {
        let small = ShardedCluster::new(2, "material_id");
        for i in 0..N {
            small
                .insert_one("tasks", json!({"material_id": format!("mp-{i}"), "i": i}))
                .unwrap();
        }
        let mut shards: Vec<Database> = (0..small.num_shards())
            .map(|i| small.shard(i).clone())
            .collect();
        shards.push(Database::new());
        shards.push(Database::new());
        let big = Arc::new(ShardedCluster::from_shards(shards, "material_id"));

        let mover = {
            let big = big.clone();
            thread::spawn(move || big.rebalance("tasks").unwrap())
        };
        let during = big.count("tasks", &json!({})).unwrap();
        assert!(
            during >= N,
            "scatter under-counted during rebalance: {during}"
        );
        mover.join().unwrap();

        assert_eq!(big.count("tasks", &json!({})).unwrap(), N);
        for i in 0..N {
            let hits = big
                .find("tasks", &json!({"material_id": format!("mp-{i}")}))
                .unwrap();
            assert_eq!(hits.len(), 1, "mp-{i} after rebalance");
        }
    });
}

/// Replication round racing a secondary-preference read: the reader
/// sees some oplog prefix (never more than was written), and once
/// replication quiesces every secondary has the full set.
#[test]
fn replicaset_replicate_vs_secondary_read() {
    const N: usize = 4;
    loom::model(|| {
        let rs = Arc::new(ReplicaSet::new(1, 2));
        for i in 0..N {
            rs.insert_one("t", json!({"i": i})).unwrap();
        }
        let applier = {
            let rs = rs.clone();
            thread::spawn(move || {
                rs.replicate().unwrap();
            })
        };
        let seen = rs
            .find(ReadPreference::Secondary, "t", &json!({}))
            .unwrap()
            .len();
        assert!(seen <= N, "secondary read saw {seen} > {N} docs");
        applier.join().unwrap();

        while rs.replicate().unwrap() > 0 {}
        let full = rs.find(ReadPreference::Secondary, "t", &json!({})).unwrap();
        assert_eq!(full.len(), N);
    });
}
