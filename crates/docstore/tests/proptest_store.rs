//! Property-based tests for the document store's core invariants.

use mp_docstore::{Database, Filter, FindOptions, SortDir, Update};
use proptest::prelude::*;
use serde_json::{json, Value};

/// Strategy: a small scalar JSON value.
fn scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::from),
        (-1000i64..1000).prop_map(Value::from),
        (-100.0f64..100.0).prop_map(|f| json!(f)),
        "[a-z]{0,8}".prop_map(Value::from),
    ]
}

/// Strategy: a flat-ish document with a few known fields.
fn document() -> impl Strategy<Value = Value> {
    (
        scalar(),
        -1000i64..1000,
        prop::collection::vec("[a-z]{1,4}", 0..4),
        scalar(),
    )
        .prop_map(|(a, n, tags, nested)| {
            json!({
                "a": a,
                "n": n,
                "tags": tags,
                "sub": {"x": nested},
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Inserting then finding by `_id` returns the same document.
    #[test]
    fn insert_get_roundtrip(doc in document()) {
        let db = Database::new();
        let coll = db.collection("c");
        let id = coll.insert_one(doc.clone()).unwrap();
        let found = coll.get(&id).unwrap();
        for (k, v) in doc.as_object().unwrap() {
            prop_assert_eq!(&found[k], v);
        }
    }

    /// count(filter) equals find(filter).len() for range filters.
    #[test]
    fn count_matches_find(docs in prop::collection::vec(document(), 1..40), lo in -1000i64..1000) {
        let db = Database::new();
        let coll = db.collection("c");
        coll.insert_many(docs).unwrap();
        let q = json!({"n": {"$gte": lo}});
        prop_assert_eq!(coll.count(&q).unwrap(), coll.find(&q).unwrap().len());
    }

    /// Index-accelerated queries return exactly what a full scan does.
    #[test]
    fn index_equals_full_scan(docs in prop::collection::vec(document(), 1..40), needle in -1000i64..1000) {
        let db_plain = Database::new();
        let db_ix = Database::new();
        db_plain.collection("c").insert_many(docs.clone()).unwrap();
        let ixc = db_ix.collection("c");
        ixc.create_index("n", false).unwrap();
        ixc.insert_many(docs).unwrap();

        for q in [
            json!({"n": needle}),
            json!({"n": {"$gte": needle}}),
            json!({"n": {"$lt": needle}}),
            json!({"n": {"$gte": needle - 100, "$lte": needle + 100}}),
        ] {
            let mut a = db_plain.collection("c").find(&q).unwrap();
            let mut b = ixc.find(&q).unwrap();
            let key = |d: &std::sync::Arc<Value>| d["_id"].as_str().unwrap_or("").to_string();
            a.sort_by_key(key);
            b.sort_by_key(key);
            // Ids differ between DBs; compare the `n` multiset instead.
            let mut na: Vec<i64> = a.iter().map(|d| d["n"].as_i64().unwrap()).collect();
            let mut nb: Vec<i64> = b.iter().map(|d| d["n"].as_i64().unwrap()).collect();
            na.sort_unstable();
            nb.sort_unstable();
            prop_assert_eq!(na, nb);
        }
    }

    /// A document updated with $set {path: v} subsequently matches
    /// {path: v}.
    #[test]
    fn set_then_match(doc in document(), v in scalar()) {
        let db = Database::new();
        let coll = db.collection("c");
        let id = coll.insert_one(doc).unwrap();
        coll.update_one(&json!({"_id": id}), &json!({"$set": {"sub.y": v}})).unwrap();
        let found = coll.find_one(&json!({"_id": id})).unwrap().unwrap();
        let f = Filter::parse(&json!({"sub.y": v})).unwrap();
        prop_assert!(f.matches(&found));
    }

    /// $set is idempotent: applying twice equals applying once.
    #[test]
    fn set_idempotent(doc in document(), v in scalar()) {
        let u = Update::parse(&json!({"$set": {"p.q": v}})).unwrap();
        let mut once = doc.clone();
        u.apply(&mut once, 0.0, false).unwrap();
        let mut twice = once.clone();
        u.apply(&mut twice, 0.0, false).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// $inc by a then by b equals $inc by a+b.
    #[test]
    fn inc_additive(a in -100i64..100, b in -100i64..100) {
        let mut d1 = json!({"n": 0});
        let ua = Update::parse(&json!({"$inc": {"n": a}})).unwrap();
        let ub = Update::parse(&json!({"$inc": {"n": b}})).unwrap();
        ua.apply(&mut d1, 0.0, false).unwrap();
        ub.apply(&mut d1, 0.0, false).unwrap();
        let mut d2 = json!({"n": 0});
        let uab = Update::parse(&json!({"$inc": {"n": a + b}})).unwrap();
        uab.apply(&mut d2, 0.0, false).unwrap();
        prop_assert_eq!(d1, d2);
    }

    /// Sorting is total and stable under the comparator: sorted output
    /// is a permutation of input and non-decreasing.
    #[test]
    fn sort_is_total(docs in prop::collection::vec(document(), 1..30)) {
        let db = Database::new();
        let coll = db.collection("c");
        coll.insert_many(docs).unwrap();
        let opts = FindOptions::all().sort_by("a", SortDir::Asc);
        let out = coll.find_with(&json!({}), &opts).unwrap();
        prop_assert_eq!(out.len(), coll.len());
        for w in out.windows(2) {
            let c = opts.compare(&w[0], &w[1]);
            prop_assert_ne!(c, std::cmp::Ordering::Greater);
        }
    }

    /// delete_many removes exactly the matching documents.
    #[test]
    fn delete_removes_matches(docs in prop::collection::vec(document(), 1..30), cut in -1000i64..1000) {
        let db = Database::new();
        let coll = db.collection("c");
        coll.insert_many(docs).unwrap();
        let total = coll.len();
        let q = json!({"n": {"$lt": cut}});
        let matching = coll.count(&q).unwrap();
        let removed = coll.delete_many(&q).unwrap();
        prop_assert_eq!(removed, matching);
        prop_assert_eq!(coll.len(), total - removed);
        prop_assert_eq!(coll.count(&q).unwrap(), 0);
    }

    /// Skip/limit paging visits every document exactly once.
    #[test]
    fn paging_partitions(docs in prop::collection::vec(document(), 1..40), page in 1usize..7) {
        let db = Database::new();
        let coll = db.collection("c");
        coll.insert_many(docs).unwrap();
        let total = coll.len();
        let mut seen = 0;
        let mut offset = 0;
        loop {
            let opts = FindOptions::all()
                .sort_by("_id", SortDir::Asc)
                .skip(offset)
                .limit(page);
            let chunk = coll.find_with(&json!({}), &opts).unwrap();
            if chunk.is_empty() {
                break;
            }
            seen += chunk.len();
            offset += page;
        }
        prop_assert_eq!(seen, total);
    }

    /// Filter round-trip: a filter built from a document's own values
    /// matches that document.
    #[test]
    fn self_filter_matches(doc in document()) {
        let q = json!({"n": doc["n"].clone()});
        let f = Filter::parse(&q).unwrap();
        prop_assert!(f.matches(&doc));
    }
}
