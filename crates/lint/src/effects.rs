//! Pass 8: interprocedural mutation-effect analysis (`E0xx`).
//!
//! The datastore's consistency story rests on three invariants that no
//! single function can see locally: every mutation must **bump the
//! collection generation** (or the query cache serves stale results),
//! every mutation reachable from the durable surface must be
//! **journaled** (or recovery replays to a different state), and no
//! **Ordered lock may be held across blocking I/O** or a work-pool
//! scatter (or one slow fsync serializes the whole server). This pass
//! proves all three statically. It reuses the mp-flow machinery —
//! per-function summaries ([`crate::summary`]) and the workspace call
//! graph ([`crate::callgraph`]) — and computes per-function *effect
//! summaries* (mutates / bumps-generation / appends-journal / blocking
//! I/O / scatter), propagated bottom-up through the graph.
//!
//! Codes (all `Error` severity — CI gates the workspace at zero):
//! - `E001`: a configured mutation primitive that never reaches a
//!   generation bump — its writes are invisible to the query cache.
//! - `E002`: the journal-coverage contract, three ways: a durable-surface
//!   method that mutates without journaling; a mutation primitive no
//!   journaling caller covers; a `pub` function in a surface crate whose
//!   call graph mutates collections without reaching the journal and
//!   without a justified allow.
//! - `E003`: blocking I/O or a work-pool scatter (direct or transitive)
//!   while a *bound* Ordered-lock guard is live. A chained temporary
//!   (`self.journal.lock().log(op)`) releases at the end of the
//!   statement and is exempt by construction.
//! - `E004`: in-place mutation of `Arc`-shared data (`Arc::get_mut` /
//!   `Arc::make_mut`) — a COW violation against the snapshot-scan
//!   contract (readers hold clones of the same `Arc`s).
//! - `E005`: a generation bump not preceded by a lock acquisition in the
//!   same body — the bump can race the query cache's generation check.
//! - `E006`: an `mp-lint: allow(E...)` with no justification.
//! - `E007`: config drift — the [`EffectConfig`] names a function the
//!   workspace no longer defines, or `DESIGN.md` fails to document one
//!   of the `E0xx` codes (the allow policy is part of the contract).
//!
//! Suppression mirrors the hotpath pass: `mp-lint: allow(E002) — <justification>`
//! on the line, the line directly above, or the function's signature
//! line (or any line of the comment block directly above the signature,
//! covering the whole body). The justification after the closing paren
//! is mandatory.
//!
//! Known granularity limits, by design: effects propagate through calls
//! resolved by name+arity, so method names shared with the std
//! containers (`insert`, `clear`, `len`, …) neither grant nor propagate
//! effects — a plain `map.clear()` must not make its caller a
//! collection mutator, and the cost is that a genuine
//! `Collection::clear` call site is only checked at the coverage level
//! (its enclosing function is not marked as mutating). Guard extents
//! are tracked per `let`-binding line; destructuring bindings
//! (`if let Some(g) = …read()`) are not tracked.

use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

use crate::callgraph::{scan_tree, CallGraph};
use crate::concurrency::match_positions;
use crate::diagnostics::Diagnostic;
use crate::flow::FnRef;
use crate::summary::mask_source;

/// Assembled with `concat!` so this file never matches its own pattern
/// literals (the other source passes scan this file too).
const ALLOW_MARK: &str = concat!("mp-", "lint: allow(");

/// Every code this pass can emit; `DESIGN.md` must document each one.
pub const EFFECT_CODES: &[&str] = &["E001", "E002", "E003", "E004", "E005", "E006", "E007"];

/// Blocking-I/O markers, matched against *masked* source lines. The
/// `.write()` lock op is not here: a file write always takes an
/// argument, a lock guard acquisition never does.
const IO_PATTERNS: &[&str] = &[
    concat!("std::", "fs::"),
    concat!("fs::", "write("),
    concat!("fs::", "read("),
    concat!("fs::", "read_to_string("),
    concat!("fs::", "create_dir"),
    concat!("fs::", "remove_"),
    concat!("fs::", "rename("),
    concat!("File::", "create("),
    concat!("File::", "open("),
    concat!("OpenOptions::", "new("),
    concat!(".write_", "all("),
    concat!(".sync_", "all("),
    concat!(".sync_", "data("),
    concat!(".flu", "sh("),
    concat!("read_to_", "string("),
];

/// Work-pool scatter markers: the calls that fan work out to every pool
/// thread — the classic per-job `scatter` and the morsel-driven
/// `scatter_morsels` (which also runs on the calling thread, so a held
/// guard both parks the pool and re-enters with work of its own).
const SCATTER_PATTERNS: &[&str] = &[concat!(".scat", "ter("), concat!(".scatter_", "morsels(")];

/// In-place mutation of `Arc`-shared data (E004): the read path hands
/// out clones of shared `Arc<Document>`s, so mutating through them
/// would be visible to every concurrent reader mid-scan.
const COW_PATTERNS: &[&str] = &[concat!("Arc::get_", "mut("), concat!("Arc::make_", "mut(")];

/// Method names shared with the std containers (same list as the
/// hotpath pass): a bare `m.insert(k, v)` resolves by name+arity to any
/// same-named workspace method, so effects neither enter nor leave
/// functions with these names via method-call edges.
const STD_SHADOWED: &[&str] = &[
    "len",
    "get",
    "insert",
    "push",
    "remove",
    "extend",
    "clear",
    "is_empty",
    "contains",
    "contains_key",
    "entry",
    "iter",
];

/// Configuration: which functions carry which leaf effects, and where
/// the journaling contract applies.
#[derive(Debug, Clone)]
pub struct EffectConfig {
    /// Collection mutation primitives — every function that changes
    /// stored documents, index definitions, or the collection set.
    pub mutation_fns: Vec<FnRef>,
    /// Generation-bump primitives (the query-cache invalidation seam).
    pub bump_fns: Vec<FnRef>,
    /// Journal-append primitives. Empty disables the E002 contract.
    pub journal_fns: Vec<FnRef>,
    /// `impl` types forming the durable write surface: each of their
    /// methods that directly calls a mutation primitive must also reach
    /// the journal.
    pub durable_surface: Vec<String>,
    /// Crates whose `pub` functions form the served API surface: any of
    /// them that transitively mutates must journal or carry a justified
    /// allow.
    pub surface_crates: Vec<String>,
}

impl EffectConfig {
    /// The Materials Project workspace defaults: the `Collection`
    /// primitives plus `Database::drop_collection` mutate;
    /// `Collection::bump_version` is the generation bump; the
    /// `Persister` appenders are the journal; `DurableDatabase` is the
    /// durable surface; `mapi` is the served surface crate.
    pub fn materials_project_defaults() -> Self {
        let parse = |v: &[&str]| v.iter().map(|s| FnRef::parse(s)).collect();
        EffectConfig {
            mutation_fns: parse(&[
                "Collection::insert_one",
                "Collection::update_one",
                "Collection::update_many",
                "Collection::upsert",
                "Collection::find_one_and_update",
                "Collection::delete_one",
                "Collection::delete_many",
                "Collection::create_index",
                "Collection::drop_index",
                "Collection::clear",
                "Database::drop_collection",
            ]),
            bump_fns: parse(&["Collection::bump_version"]),
            journal_fns: parse(&["Persister::append_ops", "Persister::snapshot"]),
            durable_surface: vec!["DurableDatabase".to_string()],
            surface_crates: vec!["mapi".to_string()],
        }
    }
}

/// The effect summary of one function, for export into the annotated
/// call graph (`mp-lint callgraph --json`).
#[derive(Debug, Clone, Default)]
pub struct FnEffects {
    /// Is (or transitively calls) a configured mutation primitive.
    pub mutates: bool,
    /// Reaches a generation bump.
    pub bumps: bool,
    /// Reaches a journal append.
    pub journals: bool,
    /// Performs (or transitively reaches) blocking file I/O.
    pub io: bool,
    /// Reaches a work-pool scatter.
    pub scatter: bool,
    /// Lock sites in the body: `(receiver, op, line, rank)` where rank
    /// is the `LockRank` the receiver field is constructed with, when
    /// the workspace scan can attribute it.
    pub locks: Vec<(String, &'static str, usize, Option<String>)>,
}

/// `allow(...)` codes named on a raw line via the mp-lint marker, plus
/// whether a justification follows the closing paren.
fn effect_allows(raw: &str) -> (Vec<String>, bool) {
    let Some(start) = raw.find(ALLOW_MARK) else {
        return (Vec::new(), true);
    };
    let rest = &raw[start + ALLOW_MARK.len()..];
    let Some(end) = rest.find(')') else {
        return (Vec::new(), true);
    };
    let codes = rest[..end]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    let justification = rest[end + 1..]
        .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '-' | ':' | '.' | ','));
    (codes, justification.chars().count() >= 8)
}

/// The fn-level suppression line for a signature on 1-based `fn_line`:
/// the signature line itself, or any line of the contiguous
/// comment/attribute block directly above it.
fn fn_allow_line(raw_lines: &[String], fn_line: usize) -> &str {
    let sig = raw_lines
        .get(fn_line.wrapping_sub(1))
        .map(String::as_str)
        .unwrap_or("");
    if sig.contains(ALLOW_MARK) {
        return sig;
    }
    let mut idx = fn_line.wrapping_sub(1);
    while idx >= 1 {
        let above = raw_lines.get(idx - 1).map(String::as_str).unwrap_or("");
        let lead = above.trim_start();
        if !lead.starts_with("//") && !lead.starts_with("#[") {
            break;
        }
        if above.contains(ALLOW_MARK) {
            return above;
        }
        idx -= 1;
    }
    sig
}

/// Per-file scan artifacts: raw lines (for allow comments) and masked
/// lines (for structural/pattern scanning).
struct FileArt {
    raw: Vec<String>,
    masked: Vec<String>,
}

impl FileArt {
    /// Is `code` allowed (with any justification state) at 1-based
    /// `line`, by an inline comment, the line directly above, or the
    /// enclosing function level (`fn_line` is the signature line)?
    fn allowed(&self, code: &str, line: usize, fn_line: usize) -> bool {
        let fn_level = fn_allow_line(&self.raw, fn_line);
        [
            self.raw.get(line.wrapping_sub(1)).map(String::as_str),
            self.raw.get(line.wrapping_sub(2)).map(String::as_str),
            Some(fn_level),
        ]
        .into_iter()
        .flatten()
        .any(|src| effect_allows(src).0.iter().any(|c| c == code))
    }
}

/// `(body-open line, body-open column, end line)` of the function whose
/// signature starts at 1-based `fn_line`, by brace matching over the
/// masked text.
fn fn_extent(masked: &[String], fn_line: usize) -> Option<(usize, usize, usize)> {
    let mut open: Option<(usize, usize)> = None;
    let mut depth = 0i64;
    for (idx, line) in masked.iter().enumerate().skip(fn_line.saturating_sub(1)) {
        for (col, c) in line.char_indices() {
            match c {
                '{' => {
                    depth += 1;
                    if open.is_none() {
                        open = Some((idx + 1, col));
                    }
                }
                '}' if open.is_some() => {
                    depth -= 1;
                    if depth == 0 {
                        let (ol, oc) = open.unwrap_or((idx + 1, col));
                        return Some((ol, oc, idx + 1));
                    }
                }
                _ => {}
            }
        }
    }
    open.map(|(ol, oc)| (ol, oc, masked.len()))
}

/// Resolve a ref list against the graph; every ref with zero matches is
/// one `E007` (config drift would silently disable the pass).
fn resolve(
    graph: &CallGraph,
    refs: &[FnRef],
    kind: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<bool> {
    let mut mask = vec![false; graph.fns.len()];
    for r in refs {
        let mut hit = false;
        for (i, f) in graph.fns.iter().enumerate() {
            if r.is_match(f) {
                mask[i] = true;
                hit = true;
            }
        }
        if !hit {
            diags.push(
                Diagnostic::error(
                    "E007",
                    r.display(),
                    format!(
                        "effects config names {kind} `{}` but the workspace defines no such \
                         function — the pass would silently skip it",
                        r.display()
                    ),
                )
                .with_suggestion(
                    "update EffectConfig (or materials_project_defaults) to match the renamed \
                     or removed function",
                ),
            );
        }
    }
    mask
}

/// Transitive closure of an effect up the call graph: a caller carries
/// the effect when any of its call edges reaches a function carrying
/// it. Propagation never passes *through* a std-shadowed method name
/// (the edge may be a plain container call resolved by coincidence).
fn propagate(graph: &CallGraph, seed: &[bool]) -> Vec<bool> {
    let shadowed = |v: usize| -> bool {
        let f = &graph.fns[v];
        f.impl_type.is_some() && STD_SHADOWED.contains(&f.name.as_str())
    };
    let mut eff = seed.to_vec();
    let mut q: VecDeque<usize> = (0..eff.len()).filter(|&i| eff[i]).collect();
    while let Some(u) = q.pop_front() {
        if shadowed(u) {
            continue;
        }
        for &(caller, _line) in &graph.rin[u] {
            if !eff[caller] {
                eff[caller] = true;
                q.push_back(caller);
            }
        }
    }
    eff
}

/// Every masked body line of function `i` (1-based), with the signature
/// clipped off the body-open line.
fn body_lines<'a>(
    graph: &CallGraph,
    arts: &'a BTreeMap<&str, FileArt>,
    i: usize,
) -> Vec<(usize, &'a str)> {
    let f = &graph.fns[i];
    let Some(art) = arts.get(f.file.as_str()) else {
        return Vec::new();
    };
    let Some((ol, oc, end)) = fn_extent(&art.masked, f.line) else {
        return Vec::new();
    };
    (ol..=end)
        .map(|lineno| {
            let full = art.masked.get(lineno - 1).map(String::as_str).unwrap_or("");
            let seg = if lineno == ol {
                full.get(oc..).unwrap_or("")
            } else {
                full
            };
            (lineno, seg)
        })
        .collect()
}

fn matches_any(seg: &str, pats: &[&str]) -> bool {
    pats.iter().any(|p| !match_positions(seg, p).is_empty())
}

/// `field name → LockRank name`, harvested from constructor lines of
/// the form `journal: OrderedMutex::new(LockRank::Journal, …)`.
fn lock_ranks(sources: &BTreeMap<String, String>) -> BTreeMap<String, String> {
    let mut ranks = BTreeMap::new();
    let ctors = [
        concat!("OrderedMutex::", "new(LockRank::"),
        concat!("OrderedRwLock::", "new(LockRank::"),
    ];
    for src in sources.values() {
        for line in mask_source(src).lines() {
            for ctor in ctors {
                for pos in match_positions(line, ctor) {
                    let rank: String = line[pos + ctor.len()..]
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    // The field being initialized precedes the call:
                    // `field: OrderedMutex::new(…`.
                    let before = line[..pos].trim_end();
                    let Some(head) = before.strip_suffix(':') else {
                        continue;
                    };
                    let field: String = head
                        .chars()
                        .rev()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect::<String>()
                        .chars()
                        .rev()
                        .collect();
                    if !field.is_empty() && !rank.is_empty() {
                        ranks.insert(field, rank.clone());
                    }
                }
            }
        }
    }
    ranks
}

/// Everything the checks and the export both need.
struct Computed {
    mutation: Vec<bool>,
    bump: Vec<bool>,
    journal: Vec<bool>,
    any_journal: bool,
    mut_star: Vec<bool>,
    bump_star: Vec<bool>,
    journal_star: Vec<bool>,
    io_star: Vec<bool>,
    scatter_star: Vec<bool>,
    ranks: BTreeMap<String, String>,
}

fn compute(
    graph: &CallGraph,
    arts: &BTreeMap<&str, FileArt>,
    sources: &BTreeMap<String, String>,
    config: &EffectConfig,
    diags: &mut Vec<Diagnostic>,
) -> Computed {
    let n = graph.fns.len();
    let mutation = resolve(graph, &config.mutation_fns, "mutation primitive", diags);
    let bump = resolve(graph, &config.bump_fns, "generation bump", diags);
    let journal = resolve(graph, &config.journal_fns, "journal append", diags);
    let mut io = vec![false; n];
    let mut scatter = vec![false; n];
    for i in 0..n {
        for (_, seg) in body_lines(graph, arts, i) {
            io[i] |= matches_any(seg, IO_PATTERNS);
            scatter[i] |= matches_any(seg, SCATTER_PATTERNS);
        }
    }
    Computed {
        any_journal: journal.iter().any(|&b| b),
        mut_star: propagate(graph, &mutation),
        bump_star: propagate(graph, &bump),
        journal_star: propagate(graph, &journal),
        io_star: propagate(graph, &io),
        scatter_star: propagate(graph, &scatter),
        mutation,
        bump,
        journal,
        ranks: lock_ranks(sources),
    }
}

fn build_arts(sources: &BTreeMap<String, String>) -> BTreeMap<&str, FileArt> {
    sources
        .iter()
        .map(|(p, s)| {
            (
                p.as_str(),
                FileArt {
                    raw: s.lines().map(str::to_string).collect(),
                    masked: mask_source(s).lines().map(str::to_string).collect(),
                },
            )
        })
        .collect()
}

/// Effect summaries for every function, aligned with `graph.fns`. Used
/// by the annotated call-graph export.
pub fn effect_summaries(
    graph: &CallGraph,
    sources: &BTreeMap<String, String>,
    config: &EffectConfig,
) -> Vec<FnEffects> {
    let arts = build_arts(sources);
    let mut sink = Vec::new();
    let c = compute(graph, &arts, sources, config, &mut sink);
    graph
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| FnEffects {
            mutates: c.mut_star[i],
            bumps: c.bump_star[i],
            journals: c.journal_star[i],
            io: c.io_star[i],
            scatter: c.scatter_star[i],
            locks: f
                .locks
                .iter()
                .map(|l| {
                    let field = l.receiver.rsplit('.').next().unwrap_or(&l.receiver);
                    (
                        l.receiver.clone(),
                        l.op,
                        l.line,
                        c.ranks.get(field).cloned(),
                    )
                })
                .collect(),
        })
        .collect()
}

/// The effect-annotated call graph as JSON: every function with its
/// effect summary, lock sites, and sequenced ordering trace
/// ([`crate::order::order_traces`] with the Materials Project
/// defaults), plus the resolved edges. This is the artifact CI
/// uploads.
pub fn effect_graph_json(
    graph: &CallGraph,
    sources: &BTreeMap<String, String>,
    config: &EffectConfig,
) -> String {
    let effects = effect_summaries(graph, sources, config);
    let traces = crate::order::order_traces(
        graph,
        sources,
        &crate::order::OrderConfig::materials_project_defaults(),
    );
    let fns: Vec<serde_json::Value> = graph
        .fns
        .iter()
        .zip(&effects)
        .enumerate()
        .map(|(i, (f, e))| {
            serde_json::json!({
                "index": i,
                "crate": f.crate_name,
                "file": f.file,
                "line": f.line,
                "name": f.qualified(),
                "pub": f.is_pub,
                "effects": {
                    "mutates": e.mutates,
                    "bumps_generation": e.bumps,
                    "appends_journal": e.journals,
                    "blocking_io": e.io,
                    "scatter": e.scatter,
                },
                "locks": e.locks.iter().map(|(recv, op, line, rank)| {
                    serde_json::json!({
                        "receiver": recv, "op": op, "line": line, "rank": rank,
                    })
                }).collect::<Vec<_>>(),
                "trace": traces[i].iter().map(|t| {
                    serde_json::json!({
                        "kind": t.kind, "line": t.line, "via": t.via,
                    })
                }).collect::<Vec<_>>(),
            })
        })
        .collect();
    let edges: Vec<serde_json::Value> = graph
        .edges
        .iter()
        .map(|e| serde_json::json!({"from": e.from, "to": e.to, "line": e.line}))
        .collect();
    serde_json::json!({"functions": fns, "edges": edges}).to_string()
}

/// Role map for the DOT rendering: mutation primitives gold, journal
/// appenders green, generation bumps blue, I/O performers red.
pub fn effect_roles(
    graph: &CallGraph,
    sources: &BTreeMap<String, String>,
    config: &EffectConfig,
) -> BTreeMap<usize, &'static str> {
    let arts = build_arts(sources);
    let mut sink = Vec::new();
    let c = compute(graph, &arts, sources, config, &mut sink);
    let mut roles = BTreeMap::new();
    for i in 0..graph.fns.len() {
        if c.mutation[i] {
            roles.insert(i, "mutates");
        } else if c.journal[i] {
            roles.insert(i, "journals");
        } else if c.bump[i] {
            roles.insert(i, "bumps");
        } else if c.io_star[i] {
            roles.insert(i, "io");
        }
    }
    roles
}

/// One live `let`-bound lock guard while walking a function body.
struct LiveGuard {
    name: String,
    receiver: String,
    line: usize,
    /// Brace depth at the binding line's start; the guard dies when the
    /// walk's depth drops below it.
    depth: i64,
}

/// The receiver expression ending just before byte `pos`:
/// `self.journal.lock()` → `self.journal`.
fn receiver_before(seg: &str, pos: usize) -> String {
    let head = &seg[..pos];
    let start = head
        .rfind(|c: char| !(c.is_alphanumeric() || c == '_' || c == '.'))
        .map(|p| p + 1)
        .unwrap_or(0);
    head[start..].trim_matches('.').to_string()
}

/// E003: walk each body once, tracking live bound guards by brace
/// depth (and explicit `drop(name)`), and flag lines inside a guard
/// extent that perform blocking I/O or a scatter, directly or through a
/// call edge.
fn check_lock_extents(
    graph: &CallGraph,
    arts: &BTreeMap<&str, FileArt>,
    c: &Computed,
    diags: &mut Vec<Diagnostic>,
) {
    let lock_ops: [&str; 3] = [
        concat!(".lo", "ck()"),
        concat!(".re", "ad()"),
        concat!(".wri", "te()"),
    ];
    let shadowed = |v: usize| -> bool {
        let f = &graph.fns[v];
        f.impl_type.is_some() && STD_SHADOWED.contains(&f.name.as_str())
    };
    for (i, f) in graph.fns.iter().enumerate() {
        let Some(art) = arts.get(f.file.as_str()) else {
            continue;
        };
        let body = body_lines(graph, arts, i);
        if body.is_empty() {
            continue;
        }
        // Call edges out of this function, by line.
        let mut calls_at: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(v, line) in &graph.out[i] {
            calls_at.entry(line).or_default().push(v);
        }
        let mut depth = 0i64;
        let mut guards: Vec<LiveGuard> = Vec::new();
        for (lineno, seg) in body {
            // A guard bound on an earlier line covers this one.
            if !guards.is_empty() && lineno > guards[0].line {
                let offending = guards.iter().find(|_| {
                    let direct =
                        matches_any(seg, IO_PATTERNS) || matches_any(seg, SCATTER_PATTERNS);
                    let via_call = calls_at.get(&lineno).is_some_and(|vs| {
                        vs.iter()
                            .any(|&v| !shadowed(v) && (c.io_star[v] || c.scatter_star[v]))
                    });
                    direct || via_call
                });
                if let Some(g) = offending {
                    if !art.allowed("E003", lineno, f.line) {
                        let field = g.receiver.rsplit('.').next().unwrap_or(&g.receiver);
                        let rank = c
                            .ranks
                            .get(field)
                            .map(|r| format!(" (rank {r})"))
                            .unwrap_or_default();
                        diags.push(
                            Diagnostic::error(
                                "E003",
                                format!("{}:{lineno}", f.file),
                                format!(
                                    "blocking I/O or work-pool scatter in `{}` while holding \
                                     the guard `{}` on `{}`{rank} acquired at line {}; one slow \
                                     write serializes every thread waiting on that lock",
                                    f.qualified(),
                                    g.name,
                                    g.receiver,
                                    g.line
                                ),
                            )
                            .with_suggestion(
                                "move the I/O outside the guard (snapshot under the lock, write \
                                 outside it), use a chained temporary that releases at the end \
                                 of the statement, or annotate \
                                 `mp-lint: allow(E003) — <justification>`",
                            ),
                        );
                    }
                }
            }
            // New bound guards on this line: `let [mut] name = …op()`.
            for op in lock_ops {
                for pos in match_positions(seg, op) {
                    let trimmed = seg.trim_start();
                    let Some(binding) = trimmed
                        .strip_prefix("let ")
                        .map(|r| r.strip_prefix("mut ").unwrap_or(r))
                    else {
                        continue;
                    };
                    let name: String = binding
                        .chars()
                        .take_while(|ch| ch.is_alphanumeric() || *ch == '_')
                        .collect();
                    if name.is_empty() || !binding[name.len()..].trim_start().starts_with('=') {
                        continue;
                    }
                    guards.push(LiveGuard {
                        name,
                        receiver: receiver_before(seg, pos),
                        line: lineno,
                        depth,
                    });
                }
            }
            // Explicit early release.
            guards.retain(|g| g.line == lineno || !seg.contains(&format!("drop({})", g.name)));
            for ch in seg.chars() {
                match ch {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        guards.retain(|g| g.depth <= depth);
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Run the effects pass over a prebuilt call graph. `sources` maps the
/// summary-relative file path of every scanned file to its raw text;
/// `design` is the text of `DESIGN.md` when available (its E-code
/// coverage is part of the E007 drift check).
pub fn analyze_effects(
    graph: &CallGraph,
    sources: &BTreeMap<String, String>,
    config: &EffectConfig,
    design: Option<&str>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let arts = build_arts(sources);
    let c = compute(graph, &arts, sources, config, &mut diags);
    let n = graph.fns.len();

    // E006: a justification-free E-allow is wrong anywhere.
    for (path, art) in &arts {
        for (idx, raw) in art.raw.iter().enumerate() {
            if !raw.contains(ALLOW_MARK) {
                continue;
            }
            let (codes, justified) = effect_allows(raw);
            if !justified && codes.iter().any(|code| code.starts_with('E')) {
                diags.push(
                    Diagnostic::error(
                        "E006",
                        format!("{path}:{}", idx + 1),
                        "`mp-lint: allow(E...)` has no justification".to_string(),
                    )
                    .with_suggestion(
                        "append a justification after the closing paren, e.g. \
                         `mp-lint: allow(E002) — staging area is rebuilt from scratch on open`",
                    ),
                );
            }
        }
    }

    // E004: COW violations are a flat source property.
    for (path, art) in &arts {
        for (idx, masked) in art.masked.iter().enumerate() {
            if matches_any(masked, COW_PATTERNS) && !art.allowed("E004", idx + 1, idx + 1) {
                diags.push(
                    Diagnostic::error(
                        "E004",
                        format!("{path}:{}", idx + 1),
                        "in-place mutation of Arc-shared data — concurrent snapshot readers \
                         hold clones of this Arc and would observe the edit mid-scan"
                            .to_string(),
                    )
                    .with_suggestion(
                        "copy-on-write instead: build the new value and swap the Arc under the \
                         collection lock",
                    ),
                );
            }
        }
    }

    // E001: every mutation primitive must reach a generation bump.
    for i in (0..n).filter(|&i| c.mutation[i]) {
        let f = &graph.fns[i];
        if !c.bump_star[i] && !arts[f.file.as_str()].allowed("E001", f.line, f.line) {
            diags.push(
                Diagnostic::error(
                    "E001",
                    format!("{}:{}", f.file, f.line),
                    format!(
                        "mutation primitive `{}` never reaches a generation bump — the query \
                         cache would keep serving results computed before this write",
                        f.qualified()
                    ),
                )
                .with_suggestion(
                    "call the generation bump after the mutation commits (while still holding \
                     the collection lock)",
                ),
            );
        }
    }

    // E005: a generation bump must happen under a lock taken earlier in
    // the same body, or the bump can race the cache's generation check.
    for i in 0..n {
        let f = &graph.fns[i];
        for &(v, line) in &graph.out[i] {
            if !c.bump[v] {
                continue;
            }
            let locked_before = f.locks.iter().any(|l| l.line <= line);
            if !locked_before && !arts[f.file.as_str()].allowed("E005", line, f.line) {
                diags.push(
                    Diagnostic::error(
                        "E005",
                        format!("{}:{line}", f.file),
                        format!(
                            "`{}` bumps the generation without holding a lock acquired earlier \
                             in the body — a concurrent cached read can validate against the \
                             new generation while seeing the old documents",
                            f.qualified()
                        ),
                    )
                    .with_suggestion(
                        "acquire the collection lock before the bump, so the generation and \
                         the documents move together",
                    ),
                );
            }
        }
    }

    // E002: the journal-coverage contract (disabled when no journal fns
    // are configured — there is no journal to cover with).
    if c.any_journal {
        // (a) Durable surface: a method of a durable type that directly
        // calls a mutation primitive must reach the journal.
        for i in 0..n {
            let f = &graph.fns[i];
            let on_surface = f
                .impl_type
                .as_deref()
                .is_some_and(|t| config.durable_surface.iter().any(|s| s == t));
            if !on_surface {
                continue;
            }
            let mutates_directly = graph.out[i].iter().any(|&(v, _)| c.mutation[v]);
            if mutates_directly
                && !c.journal_star[i]
                && !arts[f.file.as_str()].allowed("E002", f.line, f.line)
            {
                diags.push(
                    Diagnostic::error(
                        "E002",
                        format!("{}:{}", f.file, f.line),
                        format!(
                            "durable-surface method `{}` mutates a collection but never \
                             reaches the journal — recovery would replay to a state missing \
                             this write",
                            f.qualified()
                        ),
                    )
                    .with_suggestion(
                        "append the corresponding JournalOp after the live mutation commits, \
                         or annotate `mp-lint: allow(E002) — <justification>`",
                    ),
                );
            }
        }
        // (b) Coverage: every mutation primitive needs at least one
        // journaling caller somewhere, or it is unreachable from the
        // durable surface and recovery can never replay it.
        for m in (0..n).filter(|&m| c.mutation[m]) {
            let covered = (0..n).any(|caller| {
                c.journal_star[caller] && graph.out[caller].iter().any(|&(v, _)| v == m)
            });
            let f = &graph.fns[m];
            if !covered && !arts[f.file.as_str()].allowed("E002", f.line, f.line) {
                diags.push(
                    Diagnostic::error(
                        "E002",
                        format!("{}:{}", f.file, f.line),
                        format!(
                            "mutation primitive `{}` has no journaling caller — no path through \
                             the durable surface can persist this kind of write",
                            f.qualified()
                        ),
                    )
                    .with_suggestion(
                        "route the operation through the durable surface (adding a JournalOp \
                         variant if none fits), or annotate the primitive with \
                         `mp-lint: allow(E002) — <justification>`",
                    ),
                );
            }
        }
        // (c) Served surface: a pub function in a surface crate whose
        // call graph mutates must journal or justify why not.
        for i in 0..n {
            let f = &graph.fns[i];
            if !f.is_pub || !config.surface_crates.contains(&f.crate_name) {
                continue;
            }
            if c.mut_star[i]
                && !c.journal_star[i]
                && !arts[f.file.as_str()].allowed("E002", f.line, f.line)
            {
                diags.push(
                    Diagnostic::error(
                        "E002",
                        format!("{}:{}", f.file, f.line),
                        format!(
                            "public surface function `{}` transitively mutates collections \
                             without journal coverage — a crash loses writes the API already \
                             acknowledged",
                            f.qualified()
                        ),
                    )
                    .with_suggestion(
                        "mutate through the durable surface, or annotate \
                         `mp-lint: allow(E002) — <justification>` stating why durability is \
                         not part of this function's contract",
                    ),
                );
            }
        }
    }

    // E003: no blocking I/O or scatter under a bound Ordered guard.
    check_lock_extents(graph, &arts, &c, &mut diags);

    // E007 (second half): DESIGN.md must document every code — the
    // allow policy is part of the public contract.
    if let Some(text) = design {
        for code in EFFECT_CODES {
            if !text.contains(code) {
                diags.push(
                    Diagnostic::error(
                        "E007",
                        "DESIGN.md",
                        format!(
                            "DESIGN.md does not document `{code}` — every effects code and its \
                             allow policy must be specified"
                        ),
                    )
                    .with_suggestion("add the code to the effects section of DESIGN.md"),
                );
            }
        }
    }

    diags
}

/// Scan the workspace at `root` and run the pass with the Materials
/// Project defaults; `root/DESIGN.md` participates in the E007 check
/// when present.
pub fn analyze_effects_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let graph = scan_tree(root)?;
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    for f in &graph.fns {
        if !sources.contains_key(&f.file) {
            let text = std::fs::read_to_string(root.join(&f.file))?;
            sources.insert(f.file.clone(), text);
        }
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    Ok(analyze_effects(
        &graph,
        &sources,
        &EffectConfig::materials_project_defaults(),
        design.as_deref(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize_source;
    use std::collections::BTreeSet;

    fn graph_and_sources(files: &[(&str, &str)]) -> (CallGraph, BTreeMap<String, String>) {
        let mut fns = Vec::new();
        let mut sources = BTreeMap::new();
        for (path, src) in files {
            fns.extend(summarize_source(path, src));
            sources.insert((*path).to_string(), (*src).to_string());
        }
        let mut deps = BTreeMap::new();
        deps.insert("a".to_string(), BTreeSet::new());
        deps.insert(
            "api".to_string(),
            ["a".to_string()].into_iter().collect::<BTreeSet<_>>(),
        );
        (CallGraph::build(fns, &deps), sources)
    }

    fn cfg(
        mutation: &[&str],
        bump: &[&str],
        journal: &[&str],
        durable: &[&str],
        surface: &[&str],
    ) -> EffectConfig {
        let parse = |v: &[&str]| v.iter().map(|s| FnRef::parse(s)).collect();
        EffectConfig {
            mutation_fns: parse(mutation),
            bump_fns: parse(bump),
            journal_fns: parse(journal),
            durable_surface: durable.iter().map(|s| s.to_string()).collect(),
            surface_crates: surface.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A store whose primitive locks, mutates, and bumps — the shape
    /// the defaults expect — plus a journaling durable wrapper.
    const CLEAN_STORE: &str = concat!(
        "pub struct Coll;\nimpl Coll {\n",
        "  pub fn insert_doc(&self, d: Value) {\n",
        "    let mut g = self.state.write();\n",
        "    g.push(d);\n",
        "    self.bump_version();\n",
        "  }\n",
        "  pub(crate) fn bump_version(&self) {}\n",
        "}\n",
        "pub struct Jr;\nimpl Jr {\n",
        "  pub fn log(&mut self, op: &Op) {}\n",
        "}\n",
        "pub struct Dur;\nimpl Dur {\n",
        "  pub fn store_doc(&self, d: Value) {\n",
        "    self.c.insert_doc(d);\n",
        "    self.j.log(&op(d));\n",
        "  }\n",
        "}\n"
    );

    fn clean_cfg() -> EffectConfig {
        cfg(
            &["Coll::insert_doc"],
            &["Coll::bump_version"],
            &["Jr::log"],
            &["Dur"],
            &[],
        )
    }

    #[test]
    fn clean_store_has_no_findings() {
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", CLEAN_STORE)]);
        let diags = analyze_effects(&g, &s, &clean_cfg(), None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn e001_mutation_without_bump() {
        let src = CLEAN_STORE.replace("    self.bump_version();\n", "");
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_effects(&g, &s, &clean_cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E001");
        assert!(diags[0].message.contains("a::Coll::insert_doc"));
    }

    #[test]
    fn e002_durable_method_without_journal() {
        let src = CLEAN_STORE.replace("    self.j.log(&op(d));\n", "");
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        // Coverage (b) is satisfied by a separate batch importer so the
        // surface check (a) is the only finding.
        let importer = concat!(
            "pub fn import(c: &Coll, j: &mut Jr, d: Value) {\n",
            "  c.insert_doc(d);\n",
            "  j.log(&op(d));\n",
            "}\n"
        );
        let full = format!("{src}{importer}");
        let (g2, s2) = graph_and_sources(&[("crates/a/src/lib.rs", &full)]);
        let diags = analyze_effects(&g2, &s2, &clean_cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E002");
        assert!(diags[0].message.contains("a::Dur::store_doc"));
        // Without the importer, the uncovered primitive fires too.
        let diags = analyze_effects(&g, &s, &clean_cfg(), None);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == "E002"));
    }

    #[test]
    fn e002_pub_surface_crate_mutation_needs_journal_or_allow() {
        let api = concat!(
            "pub fn upload(c: &Coll, d: Value) {\n",
            "  c.insert_doc(d);\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[
            ("crates/a/src/lib.rs", CLEAN_STORE),
            ("crates/api/src/lib.rs", api),
        ]);
        let mut config = clean_cfg();
        config.surface_crates = vec!["api".to_string()];
        let diags = analyze_effects(&g, &s, &config, None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E002");
        assert!(diags[0].message.contains("api::upload"));
        // A justified fn-level allow silences it.
        let allowed = format!(
            "// {}E002) — staging uploads are rebuilt from scratch on open\n{api}",
            ALLOW_MARK
        );
        let (g, s) = graph_and_sources(&[
            ("crates/a/src/lib.rs", CLEAN_STORE),
            ("crates/api/src/lib.rs", &allowed),
        ]);
        let diags = analyze_effects(&g, &s, &config, None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn e003_io_under_bound_guard() {
        let src = concat!(
            "pub struct S;\nimpl S {\n",
            "  pub fn persist_all(&self) {\n",
            "    let g = self.state.lock();\n",
            "    let _ = std::",
            "fs::write(\"x\", b\"y\");\n",
            "    drop(g);\n",
            "  }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E003");
        assert!(diags[0].path.ends_with(":5"), "{}", diags[0].path);
        assert!(diags[0].message.contains("`g`"), "{}", diags[0].message);
    }

    #[test]
    fn e003_transitive_io_through_a_call() {
        let src = concat!(
            "pub struct S;\nimpl S {\n",
            "  pub fn checkpoint(&self) {\n",
            "    let g = self.state.lock();\n",
            "    self.persist_now();\n",
            "  }\n",
            "  fn persist_now(&self) {\n",
            "    let _ = std::",
            "fs::write(\"x\", b\"y\");\n",
            "  }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E003");
        assert!(diags[0].path.ends_with(":5"), "{}", diags[0].path);
    }

    /// The morsel-driven fan-out is a scatter too: dispatching
    /// `scatter_morsels` while a guard is bound parks the pool behind it
    /// exactly like the classic per-job `scatter`.
    #[test]
    fn e003_morsel_scatter_under_bound_guard() {
        let src = concat!(
            "pub struct S;\nimpl S {\n",
            "  pub fn scan_all(&self) {\n",
            "    let g = self.state.lock();\n",
            "    let _ = self.pool.scatter_",
            "morsels(&g.docs, 64, |m| m.len());\n",
            "    drop(g);\n",
            "  }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E003");
        assert!(diags[0].path.ends_with(":5"), "{}", diags[0].path);
        assert!(diags[0].message.contains("`g`"), "{}", diags[0].message);
    }

    #[test]
    fn e003_chained_temporary_is_exempt_and_drop_ends_the_extent() {
        let src = concat!(
            "pub struct S;\nimpl S {\n",
            "  pub fn append(&self) {\n",
            "    self.journal.lock().write_entry();\n",
            "  }\n",
            "  pub fn staged(&self) {\n",
            "    let g = self.state.lock();\n",
            "    let n = g.len();\n",
            "    drop(g);\n",
            "    let _ = (n, std::",
            "fs::write(\"x\", b\"y\"));\n",
            "  }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn e003_fn_level_allow_suppresses() {
        let src = format!(
            concat!(
                "pub struct S;\nimpl S {{\n",
                "  // {}E003) — snapshot must exclude appenders for its whole duration\n",
                "  pub fn checkpoint(&self) {{\n",
                "    let g = self.state.lock();\n",
                "    let _ = std::",
                "fs::write(\"x\", b\"y\");\n",
                "  }}\n",
                "}}\n"
            ),
            ALLOW_MARK
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn e004_arc_get_mut_is_a_cow_violation() {
        let src = concat!(
            "pub fn edit(d: &mut Arc<Value>) {\n",
            "  if let Some(v) = Arc::get_",
            "mut(d) { v.take(); }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E004");
    }

    #[test]
    fn e005_bump_before_lock() {
        let src = concat!(
            "pub struct Coll;\nimpl Coll {\n",
            "  pub fn insert_doc(&self, d: Value) {\n",
            "    self.bump_version();\n",
            "    let mut g = self.state.write();\n",
            "    g.push(d);\n",
            "  }\n",
            "  pub(crate) fn bump_version(&self) {}\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_effects(
            &g,
            &s,
            &cfg(
                &["Coll::insert_doc"],
                &["Coll::bump_version"],
                &[],
                &[],
                &[],
            ),
            None,
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E005");
        assert!(diags[0].path.ends_with(":4"), "{}", diags[0].path);
    }

    #[test]
    fn e006_bare_allow() {
        let src = format!(
            concat!(
                "pub fn f() {{\n",
                "  // {}E002)\n",
                "  let x = 1;\n",
                "}}\n"
            ),
            ALLOW_MARK
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E006");
    }

    #[test]
    fn e007_config_drift_and_design_coverage() {
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", "pub fn real() {}\n")]);
        let diags = analyze_effects(&g, &s, &cfg(&["Gone::missing"], &[], &[], &[], &[]), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E007");
        assert!(diags[0].message.contains("Gone::missing"));
        // A DESIGN.md missing exactly one code fires exactly once.
        let design = "E001 E002 E003 E004 E005 E007";
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), Some(design));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "E007");
        assert!(diags[0].message.contains("E006"), "{}", diags[0].message);
    }

    #[test]
    fn shadowed_names_do_not_manufacture_mutation() {
        // A pub surface fn calling `map.clear()` on a std container must
        // not be flagged just because `Coll::clear` resolves by name.
        let store = concat!(
            "pub struct Coll;\nimpl Coll {\n",
            "  pub fn clear(&self) {\n",
            "    let mut g = self.state.write();\n",
            "    g.wipe();\n",
            "    self.bump_version();\n",
            "  }\n",
            "  pub(crate) fn bump_version(&self) {}\n",
            "}\n",
            "pub struct Jr;\nimpl Jr {\n",
            "  pub fn log(&mut self, op: &Op) {}\n",
            "}\n",
            "pub fn import(c: &Coll, j: &mut Jr) {\n",
            "  c.clear();\n",
            "  j.log(&op());\n",
            "}\n"
        );
        let api = concat!(
            "pub fn stats(m: &mut BTreeMap<String, u64>) {\n",
            "  m.clear();\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[
            ("crates/a/src/lib.rs", store),
            ("crates/api/src/lib.rs", api),
        ]);
        let config = cfg(
            &["Coll::clear"],
            &["Coll::bump_version"],
            &["Jr::log"],
            &[],
            &["api"],
        );
        let diags = analyze_effects(&g, &s, &config, None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn effect_summaries_annotate_the_graph() {
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", CLEAN_STORE)]);
        let effects = effect_summaries(&g, &s, &clean_cfg());
        let idx = |name: &str| {
            g.fns
                .iter()
                .position(|f| f.qualified() == name)
                .unwrap_or_else(|| panic!("{name} not found"))
        };
        let dur = &effects[idx("a::Dur::store_doc")];
        assert!(dur.mutates && dur.bumps && dur.journals);
        let coll = &effects[idx("a::Coll::insert_doc")];
        assert!(coll.mutates && coll.bumps && !coll.journals);
        let json = effect_graph_json(&g, &s, &clean_cfg());
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(v["functions"].as_array().is_some_and(|a| !a.is_empty()));
        assert!(v["edges"].as_array().is_some_and(|a| !a.is_empty()));
    }

    #[test]
    fn lock_ranks_attributed_from_constructors() {
        let src = concat!(
            "pub struct S;\nimpl S {\n",
            "  pub fn new(p: P) -> Self {\n",
            "    S { journal: OrderedMutex::",
            "new(LockRank::Journal, p) }\n",
            "  }\n",
            "  pub fn checkpoint(&self) {\n",
            "    let g = self.journal.lock();\n",
            "    let _ = std::",
            "fs::write(\"x\", b\"y\");\n",
            "  }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_effects(&g, &s, &cfg(&[], &[], &[], &[], &[]), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("rank Journal"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn workspace_is_effects_clean() {
        // The acceptance gate: zero E0xx findings on the whole workspace
        // with the Materials Project defaults — every mutation bumps,
        // every durable path journals, no lock spans I/O, and DESIGN.md
        // documents the codes.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = analyze_effects_tree(&root).expect("scan workspace");
        assert!(
            diags.is_empty(),
            "workspace effects findings:\n{}",
            crate::diagnostics::render(&diags)
        );
    }
}
