//! CLI front-end for the analysis passes.
//!
//! ```text
//! mp-lint query <query.json> [--db <dir>] [--collection <name>] [--json]
//! mp-lint workflow <workflow.json> [--json]
//! mp-lint data <doc.json> [<doc.json> ...] [--json]
//! mp-lint concurrency [<root>] [--json]
//! mp-lint perf [<root>] [--json]
//! mp-lint flow [<root>] [--json]
//! mp-lint hotpath [<root>] [--json]
//! mp-lint effects [<root>] [--json]
//! mp-lint order [<root>] [--json]
//! mp-lint all [<root>] [--json]
//! mp-lint callgraph [<root>] [--dot [--effects] | --json]
//! ```
//!
//! `query` lints a Mongo-style filter document; with `--db` it recovers a
//! persisted database directory, infers the collection's schema, and runs
//! the schema-aware checks too. `workflow` lints a serialized workflow
//! document. `data` validates task documents against the default V&V
//! contract. `concurrency` scans a source tree (default `.`) for lock
//! facade violations (`L0xx`). `perf` scans a source tree (default `.`)
//! for read-path regressions (`P002`/`P003`). `flow` builds the
//! workspace call graph and runs the interprocedural taint (`S0xx`) and
//! panic-reachability (`R0xx`) passes. `hotpath` runs the
//! interprocedural hot-path cost analysis (`H0xx`): per-document
//! allocation anti-patterns in hot regions, with the full hot call
//! chain. `effects` runs the interprocedural mutation-effect analysis
//! (`E0xx`): generation-bump, journal-coverage, and
//! no-I/O-under-lock invariants. `order` runs the interprocedural
//! write-ahead ordering proofs (`O0xx`): sequenced effect traces
//! checking append-before-apply, barrier-before-ack, checksum
//! framing, verified recovery, and fsync-per-op loops. `all` runs
//! every source-tree pass (`concurrency`, `perf`, `flow`, `hotpath`,
//! `effects`, `order`) and merges the findings into one envelope with
//! per-pass counts and one exit code. `callgraph` prints the graph
//! (GraphViz DOT with `--dot`, role-colored: sources blue, sanitizers
//! green, sinks gold, panicking fns red; add `--effects` to color by
//! effect instead, with the write-ahead ordering edges — journal /
//! barrier / mutate / frame / verify / apply — colored and labeled),
//! or the effect-annotated graph as JSON with `--json` (the artifact
//! CI uploads, including each function's sequenced ordering trace).
//!
//! Every pass obeys one contract: diagnostics are ordered by
//! (file, line, code); `--json` emits the shared envelope
//! `{"pass": ..., "findings": [...], "counts": {...}}` (schema in
//! DESIGN.md §12); the exit status is 1 when *any* finding fires —
//! warnings included, the workspace invariant is zero — and 2 on
//! usage/IO problems.

use std::process::ExitCode;

use mp_docstore::Persister;
use mp_lint::{
    analyze_query, analyze_query_with_schema, analyze_workflow, render, render_envelope,
    CollectionSchema, Diagnostic, RuleSet, WfNode,
};
use serde_json::Value;

const USAGE: &str = "usage:
  mp-lint query <query.json> [--db <dir>] [--collection <name>] [--json]
  mp-lint workflow <workflow.json> [--json]
  mp-lint data <doc.json> [<doc.json> ...] [--json]
  mp-lint concurrency [<root>] [--json]
  mp-lint perf [<root>] [--json]
  mp-lint flow [<root>] [--json]
  mp-lint hotpath [<root>] [--json]
  mp-lint effects [<root>] [--json]
  mp-lint order [<root>] [--json]
  mp-lint all [<root>] [--json]
  mp-lint callgraph [<root>] [--dot [--effects] | --json]";

const SCHEMA_SAMPLE: usize = 256;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mp-lint: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Returns `Ok(true)` when the pass reported zero findings.
fn run(args: &[String]) -> Result<bool, String> {
    let mode = args
        .first()
        .map(String::as_str)
        .ok_or("missing subcommand")?;
    let json = args[1..].iter().any(|a| a == "--json");
    let rest: Vec<String> = args[1..]
        .iter()
        .filter(|a| a.as_str() != "--json")
        .cloned()
        .collect();
    match mode {
        "query" => lint_query(&rest, json),
        "workflow" => lint_workflow(&rest, json),
        "data" => lint_data(&rest, json),
        "concurrency" => lint_tree("concurrency", &rest, json, |root| {
            mp_lint::analyze_tree(root)
        }),
        "perf" => lint_tree("perf", &rest, json, mp_lint::analyze_perf_tree),
        "flow" => lint_tree("flow", &rest, json, mp_lint::analyze_flow_tree),
        "hotpath" => lint_tree("hotpath", &rest, json, |root| {
            mp_lint::analyze_hotpath_tree(root)
        }),
        "effects" => lint_tree("effects", &rest, json, |root| {
            mp_lint::analyze_effects_tree(root)
        }),
        "order" => lint_tree("order", &rest, json, |root| {
            mp_lint::analyze_order_tree(root)
        }),
        "all" => lint_all(&rest, json),
        "callgraph" => print_callgraph(&rest, json),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn read_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))
}

/// The one reporting contract shared by every pass: the envelope under
/// `--json`, `(file, line, code)`-ordered text otherwise, and a clean
/// bit that is true only at zero findings.
fn report(pass: &str, label: &str, diags: &[Diagnostic], json: bool) -> bool {
    if json {
        println!("{}", render_envelope(pass, diags));
    } else if diags.is_empty() {
        println!("{label}: clean");
    } else {
        println!("{}", render(diags));
    }
    diags.is_empty()
}

/// Shared driver for the source-tree passes (`concurrency`, `perf`,
/// `flow`, `hotpath`): one optional root argument, one reporting
/// contract.
fn lint_tree(
    pass: &'static str,
    args: &[String],
    json: bool,
    analyze: impl Fn(&std::path::Path) -> std::io::Result<Vec<Diagnostic>>,
) -> Result<bool, String> {
    let root = args.first().map(String::as_str).unwrap_or(".");
    if let Some(extra) = args.get(1) {
        return Err(format!("{pass}: unexpected argument `{extra}`"));
    }
    let diags = analyze(std::path::Path::new(root)).map_err(|e| format!("scan `{root}`: {e}"))?;
    Ok(report(pass, root, &diags, json))
}

fn lint_query(args: &[String], json: bool) -> Result<bool, String> {
    let file = args.first().ok_or("query: missing <query.json>")?;
    let mut db_dir = None;
    let mut collection = "tasks".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => {
                db_dir = Some(args.get(i + 1).ok_or("--db needs a directory")?.clone());
                i += 2;
            }
            "--collection" => {
                collection = args.get(i + 1).ok_or("--collection needs a name")?.clone();
                i += 2;
            }
            other => return Err(format!("query: unknown flag `{other}`")),
        }
    }

    let raw = read_json(file)?;
    let diags = match db_dir {
        None => analyze_query(&raw),
        Some(dir) => {
            let mut persister = Persister::open(&dir).map_err(|e| format!("open `{dir}`: {e}"))?;
            let db = persister
                .recover()
                .map_err(|e| format!("recover `{dir}`: {e}"))?;
            let coll = db.collection(&collection);
            let schema = CollectionSchema::infer(&coll, SCHEMA_SAMPLE);
            analyze_query_with_schema(&raw, &schema, &std::collections::BTreeMap::new())
        }
    };
    Ok(report("query", file, &diags, json))
}

fn lint_workflow(args: &[String], json: bool) -> Result<bool, String> {
    let file = args.first().ok_or("workflow: missing <workflow.json>")?;
    if let Some(extra) = args.get(1) {
        return Err(format!("workflow: unexpected argument `{extra}`"));
    }
    let doc = read_json(file)?;
    let nodes = WfNode::from_workflow_json(&doc)?;
    Ok(report("workflow", file, &analyze_workflow(&nodes), json))
}

fn lint_data(args: &[String], json: bool) -> Result<bool, String> {
    if args.is_empty() {
        return Err("data: missing <doc.json>".to_string());
    }
    let rules = RuleSet::task_defaults();
    let mut all = Vec::new();
    for file in args {
        let doc = read_json(file)?;
        // Prefix each finding's path with the originating file so the
        // merged batch stays attributable and deterministically ordered.
        all.extend(rules.validate(&doc).into_iter().map(|mut d| {
            d.path = format!("{file}:{}", d.path);
            d
        }));
    }
    let label = args.join(", ");
    Ok(report("data", &label, &all, json))
}

/// One named source-tree pass: (subcommand name, tree analyzer).
type TreePass = (
    &'static str,
    fn(&std::path::Path) -> std::io::Result<Vec<Diagnostic>>,
);

/// The six source-tree passes `all` runs, in envelope order.
const TREE_PASSES: &[TreePass] = &[
    ("concurrency", |root| mp_lint::analyze_tree(root)),
    ("perf", mp_lint::analyze_perf_tree),
    ("flow", mp_lint::analyze_flow_tree),
    ("hotpath", |root| mp_lint::analyze_hotpath_tree(root)),
    ("effects", |root| mp_lint::analyze_effects_tree(root)),
    ("order", |root| mp_lint::analyze_order_tree(root)),
];

/// `mp-lint all`: every source-tree pass over one workspace scan
/// target, one merged envelope (findings ordered by the shared
/// contract, counts broken out per pass), one exit code.
fn lint_all(args: &[String], json: bool) -> Result<bool, String> {
    let root = args.first().map(String::as_str).unwrap_or(".");
    if let Some(extra) = args.get(1) {
        return Err(format!("all: unexpected argument `{extra}`"));
    }
    let path = std::path::Path::new(root);
    let mut merged: Vec<Diagnostic> = Vec::new();
    let mut by_pass = serde_json::Map::new();
    for (name, analyze) in TREE_PASSES {
        let diags = analyze(path).map_err(|e| format!("scan `{root}` ({name}): {e}"))?;
        let errors = diags
            .iter()
            .filter(|d| d.severity == mp_lint::Severity::Error)
            .count();
        by_pass.insert(
            name.to_string(),
            serde_json::json!({
                "error": errors,
                "warning": diags.len() - errors,
                "total": diags.len(),
            }),
        );
        merged.extend(diags);
    }
    if json {
        // The shared envelope, plus a per-pass counts breakdown: the
        // `findings`/`counts` fields parse exactly like any single
        // pass's envelope.
        let envelope: serde_json::Value = serde_json::from_str(&render_envelope("all", &merged))
            .map_err(|e| format!("internal envelope error: {e}"))?;
        let mut obj = envelope.as_object().cloned().unwrap_or_default();
        obj.insert("passes".to_string(), serde_json::Value::Object(by_pass));
        println!("{}", serde_json::Value::Object(obj));
    } else if merged.is_empty() {
        println!("{root}: clean ({} passes)", TREE_PASSES.len());
    } else {
        println!("{}", render(&merged));
    }
    Ok(merged.is_empty())
}

fn print_callgraph(args: &[String], as_json: bool) -> Result<bool, String> {
    let mut root = ".".to_string();
    let mut dot = false;
    let mut effects = false;
    for a in args {
        match a.as_str() {
            "--dot" => dot = true,
            "--effects" => effects = true,
            other if !other.starts_with('-') => root.clone_from(a),
            other => return Err(format!("callgraph: unknown flag `{other}`")),
        }
    }
    let path = std::path::Path::new(&root);
    let graph = mp_lint::scan_tree(path).map_err(|e| format!("scan `{root}`: {e}"))?;
    if as_json || (dot && effects) {
        // Both annotated exports need the sources for effect scanning.
        let mut sources = std::collections::BTreeMap::new();
        for f in &graph.fns {
            if !sources.contains_key(&f.file) {
                let text = std::fs::read_to_string(path.join(&f.file))
                    .map_err(|e| format!("read `{}`: {e}", f.file))?;
                sources.insert(f.file.clone(), text);
            }
        }
        let config = mp_lint::EffectConfig::materials_project_defaults();
        let order_config = mp_lint::OrderConfig::materials_project_defaults();
        if as_json {
            println!("{}", mp_lint::effect_graph_json(&graph, &sources, &config));
        } else {
            println!(
                "{}",
                graph.to_dot(
                    &mp_lint::effect_roles(&graph, &sources, &config),
                    &mp_lint::order_edge_roles(&graph, &order_config),
                )
            );
        }
    } else if dot {
        let config = mp_lint::FlowConfig::materials_project_defaults();
        println!(
            "{}",
            graph.to_dot(
                &mp_lint::flow::roles(&graph, &config),
                &std::collections::BTreeMap::new(),
            )
        );
    } else {
        println!("{} functions, {} edges", graph.fns.len(), graph.edges.len());
        for e in &graph.edges {
            println!(
                "{} -> {}",
                graph.fns[e.from].qualified(),
                graph.fns[e.to].qualified()
            );
        }
    }
    Ok(true)
}
