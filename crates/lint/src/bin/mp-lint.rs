//! CLI front-end for the three analysis passes.
//!
//! ```text
//! mp-lint query <query.json> [--db <dir>] [--collection <name>]
//! mp-lint workflow <workflow.json>
//! mp-lint data <doc.json> [<doc.json> ...]
//! mp-lint concurrency [<root>]
//! mp-lint perf [<root>]
//! mp-lint flow [<root>] [--json]
//! mp-lint callgraph [<root>] [--dot]
//! ```
//!
//! `query` lints a Mongo-style filter document; with `--db` it recovers a
//! persisted database directory, infers the collection's schema, and runs
//! the schema-aware checks too. `workflow` lints a serialized workflow
//! document. `data` validates task documents against the default V&V
//! contract. `concurrency` scans a source tree (default `.`) for lock
//! facade violations (`L0xx`). `perf` scans a source tree (default `.`)
//! for read-path regressions (`P002`/`P003`: per-document deep clones
//! and uncompiled filter matching in loops). `flow` builds the workspace
//! call graph and runs the interprocedural taint (`S0xx`) and
//! panic-reachability (`R0xx`) passes; `--json` emits the diagnostics
//! as a JSON array for machine consumers. `callgraph` prints the graph
//! (GraphViz DOT with `--dot`, role-colored: sources blue, sanitizers
//! green, sinks gold, panicking fns red). Exit status is 1 when any
//! Error-severity diagnostic fires, 2 on usage/IO problems.

use std::process::ExitCode;

use mp_docstore::Persister;
use mp_lint::{
    analyze_query, analyze_query_with_schema, analyze_workflow, has_errors, render,
    CollectionSchema, RuleSet, WfNode,
};
use serde_json::Value;

const USAGE: &str = "usage:
  mp-lint query <query.json> [--db <dir>] [--collection <name>]
  mp-lint workflow <workflow.json>
  mp-lint data <doc.json> [<doc.json> ...]
  mp-lint concurrency [<root>]
  mp-lint perf [<root>]
  mp-lint flow [<root>] [--json]
  mp-lint callgraph [<root>] [--dot]";

const SCHEMA_SAMPLE: usize = 256;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mp-lint: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Returns `Ok(true)` when no Error-severity diagnostics fired.
fn run(args: &[String]) -> Result<bool, String> {
    let mode = args
        .first()
        .map(String::as_str)
        .ok_or("missing subcommand")?;
    match mode {
        "query" => lint_query(&args[1..]),
        "workflow" => lint_workflow(&args[1..]),
        "data" => lint_data(&args[1..]),
        "concurrency" => lint_concurrency(&args[1..]),
        "perf" => lint_perf(&args[1..]),
        "flow" => lint_flow(&args[1..]),
        "callgraph" => print_callgraph(&args[1..]),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn read_json(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("`{path}` is not valid JSON: {e}"))
}

fn report(label: &str, diags: &[mp_lint::Diagnostic]) -> bool {
    if diags.is_empty() {
        println!("{label}: clean");
        true
    } else {
        println!("{}", render(diags));
        !has_errors(diags)
    }
}

fn lint_query(args: &[String]) -> Result<bool, String> {
    let file = args.first().ok_or("query: missing <query.json>")?;
    let mut db_dir = None;
    let mut collection = "tasks".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--db" => {
                db_dir = Some(args.get(i + 1).ok_or("--db needs a directory")?.clone());
                i += 2;
            }
            "--collection" => {
                collection = args.get(i + 1).ok_or("--collection needs a name")?.clone();
                i += 2;
            }
            other => return Err(format!("query: unknown flag `{other}`")),
        }
    }

    let raw = read_json(file)?;
    let diags = match db_dir {
        None => analyze_query(&raw),
        Some(dir) => {
            let persister = Persister::open(&dir).map_err(|e| format!("open `{dir}`: {e}"))?;
            let db = persister
                .recover()
                .map_err(|e| format!("recover `{dir}`: {e}"))?;
            let coll = db.collection(&collection);
            let schema = CollectionSchema::infer(&coll, SCHEMA_SAMPLE);
            analyze_query_with_schema(&raw, &schema, &std::collections::BTreeMap::new())
        }
    };
    Ok(report(file, &diags))
}

fn lint_workflow(args: &[String]) -> Result<bool, String> {
    let file = args.first().ok_or("workflow: missing <workflow.json>")?;
    let doc = read_json(file)?;
    let nodes = WfNode::from_workflow_json(&doc)?;
    Ok(report(file, &analyze_workflow(&nodes)))
}

fn lint_concurrency(args: &[String]) -> Result<bool, String> {
    let root = args.first().map(String::as_str).unwrap_or(".");
    if let Some(extra) = args.get(1) {
        return Err(format!("concurrency: unexpected argument `{extra}`"));
    }
    let diags = mp_lint::analyze_tree(std::path::Path::new(root))
        .map_err(|e| format!("scan `{root}`: {e}"))?;
    // Warnings block here too: the workspace invariant is *zero* L0xx
    // findings, with sanctioned nesting annotated at the site.
    if diags.is_empty() {
        println!("{root}: clean");
        Ok(true)
    } else {
        println!("{}", render(&diags));
        Ok(false)
    }
}

fn lint_perf(args: &[String]) -> Result<bool, String> {
    let root = args.first().map(String::as_str).unwrap_or(".");
    if let Some(extra) = args.get(1) {
        return Err(format!("perf: unexpected argument `{extra}`"));
    }
    let diags = mp_lint::analyze_perf_tree(std::path::Path::new(root))
        .map_err(|e| format!("scan `{root}`: {e}"))?;
    // Same policy as `concurrency`: the workspace invariant is zero
    // P002/P003 findings, with sanctioned clones annotated at the site.
    if diags.is_empty() {
        println!("{root}: clean");
        Ok(true)
    } else {
        println!("{}", render(&diags));
        Ok(false)
    }
}

fn lint_flow(args: &[String]) -> Result<bool, String> {
    let mut root = ".".to_string();
    let mut json = false;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            other if !other.starts_with('-') => root.clone_from(a),
            other => return Err(format!("flow: unknown flag `{other}`")),
        }
    }
    let diags = mp_lint::analyze_flow_tree(std::path::Path::new(&root))
        .map_err(|e| format!("scan `{root}`: {e}"))?;
    if json {
        println!("{}", mp_lint::render_json(&diags));
        return Ok(diags.is_empty());
    }
    // Same policy as `concurrency`/`perf`: the workspace invariant is
    // zero S0xx/R0xx findings, with sanctioned panic sites carrying a
    // justified `mp-flow: allow(...)` comment.
    if diags.is_empty() {
        println!("{root}: clean");
        Ok(true)
    } else {
        println!("{}", render(&diags));
        Ok(false)
    }
}

fn print_callgraph(args: &[String]) -> Result<bool, String> {
    let mut root = ".".to_string();
    let mut dot = false;
    for a in args {
        match a.as_str() {
            "--dot" => dot = true,
            other if !other.starts_with('-') => root.clone_from(a),
            other => return Err(format!("callgraph: unknown flag `{other}`")),
        }
    }
    let graph = mp_lint::scan_tree(std::path::Path::new(&root))
        .map_err(|e| format!("scan `{root}`: {e}"))?;
    let config = mp_lint::FlowConfig::materials_project_defaults();
    if dot {
        println!("{}", graph.to_dot(&mp_lint::flow::roles(&graph, &config)));
    } else {
        println!("{} functions, {} edges", graph.fns.len(), graph.edges.len());
        for e in &graph.edges {
            println!(
                "{} -> {}",
                graph.fns[e.from].qualified(),
                graph.fns[e.to].qualified()
            );
        }
    }
    Ok(true)
}

fn lint_data(args: &[String]) -> Result<bool, String> {
    if args.is_empty() {
        return Err("data: missing <doc.json>".to_string());
    }
    let rules = RuleSet::task_defaults();
    let mut clean = true;
    for file in args {
        let doc = read_json(file)?;
        clean &= report(file, &rules.validate(&doc));
    }
    Ok(clean)
}
