//! Concurrency lints (`L0xx`): enforce the mp-sync lock facade.
//!
//! A line-based scan over workspace Rust sources. It does not parse the
//! language — like the kernel's `checkpatch`, it trades soundness for
//! zero build-time cost and catches the patterns that matter in this
//! codebase:
//!
//! * `L001` (error) — raw `Mutex`/`RwLock` construction or a direct
//!   `parking_lot`/`std::sync` lock import outside the facade. Every
//!   lock must be an `OrderedMutex`/`OrderedRwLock` with an explicit
//!   [`LockRank`](../../../sync/src/lib.rs) so the runtime checker and
//!   this pass agree on the ordering discipline.
//! * `L002` (warning) — `.lock().unwrap()`-style poisoning propagation.
//!   The facade is non-poisoning (parking_lot semantics); unwrapping a
//!   `LockResult` is dead weight that turns one panicking thread into a
//!   cascade.
//! * `L003` (warning) — a `let`-bound guard is still live when another
//!   lock is acquired (directly, or via `Database::collection`, which
//!   takes the Database lock). Nesting sanctioned by the rank table is
//!   annotated `mp-lint: allow(L003)` at the site; everything else is a
//!   latent deadlock ingredient.
//! * `L004` (error) — the same receiver is locked twice while the first
//!   guard is still live: self-deadlock with a non-reentrant lock.
//!
//! Suppression: a `mp-lint: allow(LXXX)` comment on the offending line
//! or the line directly above it silences that code for that line. An
//! `allow(L003)` on a guard's *binding* line additionally covers every
//! acquisition made while that guard is live — for lock-then-operate
//! sections like `LaunchPad::claim_next` where the outer lock is the
//! whole point.
//!
//! The pattern literals below are assembled with `concat!` so this
//! file's own source never matches the patterns it searches for — the
//! workspace self-scan test would otherwise flag the scanner itself.

use crate::diagnostics::Diagnostic;
use std::path::Path;

const RAW_MUTEX: &str = concat!("Mutex::", "new(");
const RAW_RWLOCK: &str = concat!("RwLock::", "new(");
const PARKING_IMPORT: &str = concat!("use parking", "_lot");
const STD_SYNC_PREFIX: &str = concat!("std::", "sync::");
const ACQ_LOCK: &str = concat!(".lock", "()");
const ACQ_READ: &str = concat!(".read", "()");
const ACQ_WRITE: &str = concat!(".write", "()");
const UNWRAP_CALL: &str = concat!(".unwrap", "(");
const EXPECT_CALL: &str = concat!(".expect", "(");
const COLLECTION_CALL: &str = concat!(".collection", "(");
const ALLOW_MARK: &str = "mp-lint: allow(";

/// A live `let`-bound lock guard discovered by the scanner.
#[derive(Debug, Clone)]
struct Guard {
    /// Binding name (`accounts` in `let mut accounts = ...`).
    name: String,
    /// Receiver expression the guard came from (`self.accounts`).
    receiver: String,
    /// Brace depth the binding lives at; dies when depth drops below.
    depth: i32,
    /// 1-based line of the binding, for the diagnostic message.
    line: usize,
    /// `allow(L003)` on the binding line: nesting under this guard is
    /// sanctioned for its whole lifetime.
    allows_nesting: bool,
}

/// Scan one Rust source file; `path` is used verbatim in diagnostics.
pub fn analyze_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: i32 = 0;
    let mut allow_from_prev: Vec<String> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let (code, comment) = split_comment(raw_line);
        let trimmed = code.trim();

        let mut allowed = std::mem::take(&mut allow_from_prev);
        allowed.extend(parse_allows(comment));
        if trimmed.is_empty() {
            // Comment-only line: its allows apply to the next line.
            allow_from_prev = allowed;
            continue;
        }

        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;
        let new_depth = depth + opens - closes;
        guards.retain(|g| g.depth <= new_depth);

        if let Some(name) = dropped_guard(trimmed) {
            guards.retain(|g| g.name != name);
        }

        let at = |msg_line: usize| format!("{path}:{msg_line}");
        let is_allowed = |code: &str| allowed.iter().any(|a| a == code);

        // L001: raw construction and raw imports.
        if !is_allowed("L001") {
            for pat in [RAW_MUTEX, RAW_RWLOCK] {
                for pos in match_positions(code, pat) {
                    if !preceded_by_ident(code, pos) {
                        diags.push(
                            Diagnostic::error(
                                "L001",
                                at(lineno),
                                format!("raw `{pat}...)` bypasses the mp-sync facade"),
                            )
                            .with_suggestion(
                                "construct an OrderedMutex/OrderedRwLock with an explicit LockRank",
                            ),
                        );
                    }
                }
            }
            if trimmed.starts_with(PARKING_IMPORT) {
                diags.push(
                    Diagnostic::error(
                        "L001",
                        at(lineno),
                        "direct parking_lot import bypasses the mp-sync facade",
                    )
                    .with_suggestion("import lock types from mp_sync instead"),
                );
            }
            if trimmed.starts_with("use ")
                && trimmed.contains(STD_SYNC_PREFIX)
                && (trimmed.contains("Mutex") || trimmed.contains("RwLock"))
            {
                diags.push(
                    Diagnostic::error(
                        "L001",
                        at(lineno),
                        "direct std::sync lock import bypasses the mp-sync facade",
                    )
                    .with_suggestion("import lock types from mp_sync instead"),
                );
            }
        }

        // L002: poisoning propagation on an acquisition result.
        if !is_allowed("L002") {
            for acq in [ACQ_LOCK, ACQ_READ, ACQ_WRITE] {
                for pos in match_positions(code, acq) {
                    let rest = &code[pos + acq.len()..];
                    if rest.starts_with(UNWRAP_CALL) || rest.starts_with(EXPECT_CALL) {
                        diags.push(
                            Diagnostic::warning(
                                "L002",
                                at(lineno),
                                format!("`{acq}{UNWRAP_CALL}...)` propagates lock poisoning"),
                            )
                            .with_suggestion(
                                "the mp-sync facade is non-poisoning; drop the unwrap/expect",
                            ),
                        );
                    }
                }
            }
        }

        // L003/L004: acquisitions while a guard is live.
        let mut bound_this_line: Option<Guard> = None;
        for acq in [ACQ_LOCK, ACQ_READ, ACQ_WRITE] {
            for pos in match_positions(code, acq) {
                let receiver = receiver_before(code, pos);
                if receiver.is_empty() {
                    continue;
                }
                if let Some(g) = guards.iter().find(|g| g.receiver == receiver) {
                    if !is_allowed("L004") {
                        diags.push(Diagnostic::error(
                            "L004",
                            at(lineno),
                            format!(
                                "`{receiver}` locked again while guard `{}` (line {}) is live: \
                                 self-deadlock",
                                g.name, g.line
                            ),
                        ));
                    }
                } else if let Some(g) = guards.first() {
                    if !is_allowed("L003") && !g.allows_nesting {
                        diags.push(
                            Diagnostic::warning(
                                "L003",
                                at(lineno),
                                format!(
                                    "guard `{}` (line {}) still held while `{receiver}` is locked",
                                    g.name, g.line
                                ),
                            )
                            .with_suggestion(
                                "scope the outer guard, or annotate `mp-lint: allow(L003)` if \
                                 the LockRank table sanctions this nesting",
                            ),
                        );
                    }
                }
                // Track new let-bound guards (not chained temporaries).
                if bound_this_line.is_none() {
                    if let Some((name, recv)) = guard_binding(trimmed, acq) {
                        if name != "_" && recv == receiver {
                            bound_this_line = Some(Guard {
                                name,
                                receiver: recv,
                                depth: new_depth,
                                line: lineno,
                                allows_nesting: is_allowed("L003"),
                            });
                        }
                    }
                }
            }
        }
        if let Some(g) = guards.first().filter(|g| {
            code.contains(COLLECTION_CALL)
                && !is_allowed("L003")
                && !g.allows_nesting
                && !trimmed.starts_with("fn ")
                && !trimmed.starts_with("pub fn ")
        }) {
            diags.push(
                Diagnostic::warning(
                    "L003",
                    at(lineno),
                    format!(
                        "guard `{}` (line {}) still held across Database::collection \
                         (takes the Database lock)",
                        g.name, g.line
                    ),
                )
                .with_suggestion(
                    "scope the guard, or annotate `mp-lint: allow(L003)` if the LockRank \
                     table sanctions this nesting",
                ),
            );
        }
        if let Some(g) = bound_this_line {
            guards.push(g);
        }
        depth = new_depth;
    }
    diags
}

/// Recursively scan every `.rs` file under `root`, skipping build output
/// (`target/`), vendored shims (`shims/` — third-party API surface), the
/// facade crate itself (`crates/sync` constructs raw locks by design),
/// and VCS metadata.
pub fn analyze_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if matches!(name, "target" | "shims" | ".git")
                    || (name == "sync"
                        && path
                            .parent()
                            .and_then(|p| p.file_name())
                            .and_then(|n| n.to_str())
                            == Some("crates"))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let source = std::fs::read_to_string(&path)?;
                let shown = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .display()
                    .to_string();
                diags.extend(analyze_source(&shown, &source));
            }
        }
    }
    Ok(diags)
}

/// Split a line at a `//` comment (string-literal-blind, good enough).
pub(crate) fn split_comment(line: &str) -> (&str, &str) {
    match line.find("//") {
        Some(i) => (&line[..i], &line[i..]),
        None => (line, ""),
    }
}

/// Codes named in a `mp-lint: allow(Lxxx)` / `allow(Lxxx, Lyyy)` comment.
pub(crate) fn parse_allows(comment: &str) -> Vec<String> {
    let Some(start) = comment.find(ALLOW_MARK) else {
        return Vec::new();
    };
    let rest = &comment[start + ALLOW_MARK.len()..];
    let Some(end) = rest.find(')') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect()
}

/// All start offsets of `pat` in `code`.
pub(crate) fn match_positions(code: &str, pat: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(i) = code[from..].find(pat) {
        out.push(from + i);
        from += i + pat.len();
    }
    out
}

/// True when the char before offset `pos` continues an identifier —
/// filters `OrderedMutex::new(` out of the raw-`Mutex::new(` pattern.
fn preceded_by_ident(code: &str, pos: usize) -> bool {
    code[..pos]
        .chars()
        .next_back()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// The receiver expression ending at `pos` (`self.accounts` for
/// `self.accounts.write()`), walking back over path-ish characters.
pub(crate) fn receiver_before(code: &str, pos: usize) -> String {
    let bytes = code.as_bytes();
    let mut start = pos;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if c.is_alphanumeric() || matches!(c, '_' | '.' | ':') {
            start -= 1;
        } else {
            break;
        }
    }
    code[start..pos].trim_matches('.').to_string()
}

/// For `let [mut] name = <recv><acq>...;` return `(name, recv)`.
fn guard_binding(trimmed: &str, acq: &str) -> Option<(String, String)> {
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let eq = trimmed.find('=')?;
    let after_eq = &trimmed[eq + 1..];
    let pos = after_eq.find(acq)?;
    // Guards only: the acquisition must end the expression (a chained
    // temporary like `x.lock().clone()` drops the guard immediately).
    let tail = after_eq[pos + acq.len()..].trim();
    if tail != ";" {
        return None;
    }
    Some((name, receiver_before(after_eq, pos)))
}

/// `drop(name)` / `drop(name);` — the guard named inside, if any.
fn dropped_guard(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("drop(")?;
    let inner = rest.strip_suffix(");").or_else(|| rest.strip_suffix(')'))?;
    let name = inner.trim();
    if name.chars().all(|c| c.is_alphanumeric() || c == '_') && !name.is_empty() {
        Some(name.to_string())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::has_errors;

    #[test]
    fn raw_construction_is_l001() {
        let src = concat!("let m = ", "Mutex::", "new(0);\n");
        let diags = analyze_source("x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "L001");
        assert!(has_errors(&diags));
    }

    #[test]
    fn facade_construction_is_clean() {
        let src = concat!("let m = Ordered", "Mutex::", "new(LockRank::WebLog, 0);\n");
        assert!(analyze_source("x.rs", src).is_empty());
    }

    #[test]
    fn parking_lot_and_std_imports_are_l001() {
        let src = concat!(
            "use parking",
            "_lot::{",
            "Mutex, ",
            "RwLock};\n",
            "use ",
            "std::",
            "sync::",
            "Mutex;\n",
            "use ",
            "std::",
            "sync::Arc;\n",
        );
        let diags = analyze_source("x.rs", src);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(|d| d.code == "L001"));
    }

    #[test]
    fn poisoning_unwrap_is_l002() {
        let src = concat!("let n = *m", ".lock()", ".unwrap", "();\n");
        let diags = analyze_source("x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "L002");
        assert!(!has_errors(&diags));
    }

    #[test]
    fn guard_across_lock_is_l003() {
        let src = concat!(
            "let a = self.outer",
            ".write()",
            ";\n",
            "let b = self.inner",
            ".read()",
            ";\n",
        );
        let diags = analyze_source("x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "L003");
        assert!(diags[0].message.contains("`a`"), "{}", diags[0].message);
    }

    #[test]
    fn allow_comment_suppresses_l003() {
        let src = concat!(
            "let a = self.outer",
            ".write()",
            ";\n",
            "// mp-lint: allow(L003) — rank table sanctions outer -> inner\n",
            "let b = self.inner",
            ".read()",
            ";\n",
        );
        assert!(analyze_source("x.rs", src).is_empty());
    }

    #[test]
    fn allow_on_binding_covers_guard_lifetime() {
        let src = concat!(
            "// mp-lint: allow(L003) — outermost claim lock\n",
            "let a = self.claim",
            ".lock()",
            ";\n",
            "let b = db",
            ".collection(",
            "\"fw\");\n",
            "let c = self.inner",
            ".read()",
            ";\n",
        );
        assert!(analyze_source("x.rs", src).is_empty());
    }

    #[test]
    fn scoped_guard_does_not_leak_into_sibling_scope() {
        let src = concat!(
            "{\n",
            "    let a = self.outer",
            ".write()",
            ";\n",
            "}\n",
            "let b = self.inner",
            ".read()",
            ";\n",
        );
        assert!(analyze_source("x.rs", src).is_empty());
    }

    #[test]
    fn explicit_drop_ends_liveness() {
        let src = concat!(
            "let a = self.outer",
            ".write()",
            ";\n",
            "drop(a);\n",
            "let b = self.inner",
            ".read()",
            ";\n",
        );
        assert!(analyze_source("x.rs", src).is_empty());
    }

    #[test]
    fn double_lock_same_receiver_is_l004() {
        let src = concat!(
            "let a = self.state",
            ".lock()",
            ";\n",
            "let b = self.state",
            ".lock()",
            ";\n",
        );
        let diags = analyze_source("x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "L004");
        assert!(has_errors(&diags));
    }

    #[test]
    fn chained_temporary_is_not_a_guard() {
        let src = concat!(
            "let n = self.entries",
            ".lock()",
            ".len();\n",
            "let b = self.inner",
            ".read()",
            ";\n",
        );
        assert!(analyze_source("x.rs", src).is_empty());
    }

    #[test]
    fn collection_call_under_guard_is_l003() {
        let src = concat!(
            "let a = self.stats",
            ".lock()",
            ";\n",
            "let c = db",
            ".collection(",
            "\"tasks\");\n",
        );
        let diags = analyze_source("x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "L003");
        assert!(diags[0].message.contains("Database::collection"));
    }

    #[test]
    fn workspace_is_l0xx_clean() {
        // The acceptance gate: the whole workspace reports zero L0xx
        // findings (warnings included). Sanctioned nesting is annotated
        // at the site.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = analyze_tree(&root).expect("scan workspace");
        assert!(
            diags.is_empty(),
            "workspace L0xx findings:\n{}",
            crate::diagnostics::render(&diags)
        );
    }
}
