//! mp-lint: schema-aware static analysis for the MP datastore pipeline.
//!
//! Three passes share one rustc-style diagnostics framework
//! ([`Diagnostic`]: severity, stable code, span-ish path, message,
//! optional suggestion):
//!
//! 1. **Query analyzer** ([`query`]) — checks Mongo-style filters against
//!    per-collection schemas inferred from sampled documents plus index
//!    metadata ([`schema::CollectionSchema`]). Codes `Q000`–`Q004`.
//! 2. **Workflow analyzer** ([`workflow`]) — cycle detection with the
//!    offending path, orphaned steps, fuse/binder consistency, duplicate
//!    ids. Codes `W001`–`W007`.
//! 3. **Data V&V** ([`vnv`]) — declarative per-collection contracts
//!    (required fields, types, ranges, cross-field invariants) applied to
//!    staged documents before commit. Codes `D001`–`D004`.
//! 4. **Concurrency** ([`concurrency`]) — source-level enforcement of
//!    the mp-sync lock facade: raw lock construction, poisoning
//!    propagation, guards held across lock-taking calls, same-receiver
//!    double locks. Codes `L001`–`L004`.
//! 5. **Performance** ([`perf`]) — query shapes whose only possible plan
//!    is a full collection scan regardless of indexes (`P001`), plus a
//!    source scan for read-path regressions: deep-clone-per-document
//!    closures over shared result sets (`P002`) and uncompiled
//!    `Filter::matches` calls inside loops (`P003`).
//! 6. **Flow** ([`flow`]) — interprocedural passes over the workspace
//!    call graph ([`callgraph`], built from per-function summaries in
//!    [`summary`]): taint tracking from request/staging sources to
//!    query sinks with sanitizer accounting (`S001`/`S002`), and
//!    panic-reachability from the public API surface with shortest
//!    panicking chains (`R001`–`R003`).
//! 7. **Hot path** ([`hotpath`]) — interprocedural allocation/cost
//!    analysis over the same call graph: hotness seeds at the
//!    per-document roots of the read path (compiled matcher/projection/
//!    comparator) and the loop regions of the scan/projection/
//!    aggregation/MapReduce drivers, propagates through calls, and
//!    flags per-document allocation anti-patterns (`H001`–`H007`) with
//!    the full hot call chain.
//! 8. **Effects** ([`effects`]) — interprocedural mutation-effect
//!    analysis over the same call graph: per-function effect summaries
//!    (mutates / bumps-generation / appends-journal / blocking-I/O /
//!    scatter) propagated bottom-up, proving the generation-bump,
//!    journal-coverage, and no-I/O-under-lock invariants
//!    (`E001`–`E007`).
//! 9. **Order** ([`order`]) — interprocedural write-ahead ordering
//!    proofs over the same call graph: per-function *sequenced effect
//!    traces* (ordered journal/mutate/barrier/frame/verify/apply
//!    events, calls inlined at their call line) proving the WAL
//!    protocol — append before apply, barrier before ack, framed
//!    records, verified recovery, no fsync-per-op loops
//!    (`O001`–`O007`).
//!
//! `Error`-severity findings are used as hard gates by
//! `QueryEngine::sanitize`, `LaunchPad::add_workflow`, and
//! `DataLoader::drain`; `Warning`s are surfaced but never block.

#![deny(rust_2018_idioms)]

pub mod callgraph;
pub mod concurrency;
pub mod diagnostics;
pub mod effects;
pub mod flow;
pub mod hotpath;
pub mod order;
pub mod perf;
pub mod query;
pub mod schema;
pub mod summary;
pub mod vnv;
pub mod workflow;

pub use callgraph::{scan_tree, CallGraph};
pub use concurrency::{analyze_source, analyze_tree};
pub use diagnostics::{has_errors, render, render_envelope, render_json, Diagnostic, Severity};
pub use effects::{
    analyze_effects, analyze_effects_tree, effect_graph_json, effect_roles, effect_summaries,
    EffectConfig, FnEffects,
};
pub use flow::{analyze_flow, analyze_flow_tree, FlowConfig, FnRef};
pub use hotpath::{analyze_hotpath, analyze_hotpath_tree, HotConfig};
pub use order::{
    analyze_order, analyze_order_tree, order_edge_roles, order_traces, OrderConfig, TraceEvent,
};
pub use perf::{analyze_perf_source, analyze_perf_tree, analyze_query_perf};
pub use query::{analyze_query, analyze_query_with_schema};
pub use schema::{CollectionSchema, TypeSet};
pub use summary::{summarize_source, FnSummary};
pub use vnv::{FieldCheck, FieldRule, Invariant, RuleSet};
pub use workflow::{analyze_workflow, WfNode};
