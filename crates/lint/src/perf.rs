//! Pass 5: performance lints — query shapes the planner can never
//! accelerate, and source patterns that defeat the zero-copy read path.
//!
//! Codes:
//! - `P001` (warning): forced collection scan. The root conjunctive scope
//!   carries constraints, but none of them is *sargable* (`$eq`, `$in`,
//!   or a range bound) — or the root is a pure `$or`/`$nor` disjunction,
//!   which the planner treats as opaque. Whatever indexes exist, the only
//!   access path is a walk over every document. Distinct from `Q004`,
//!   which fires when sargable predicates exist but no index covers them:
//!   `Q004` is fixed by creating an index, `P001` only by reshaping the
//!   query.
//! - `P002` (warning): deep-clone on the read path. A `.map(...)` whose
//!   closure body is `(*d).clone()` / `(**d).clone()` / `d.as_ref().clone()`
//!   materializes an owned copy of every document in a shared result set.
//!   Scan results are `Arc<Document>` handles precisely so consumers never
//!   have to do this; the one sanctioned site is a serialization boundary,
//!   annotated `mp-lint: allow(P002)`.
//! - `P003` (warning): `.matches(...)` on an *uncompiled* filter inside an
//!   iterator/loop construct. `Filter::matches` re-splits every dotted
//!   path and re-walks operand lists per call; in a per-document loop that
//!   cost multiplies by the collection size. Call `Filter::compile()` once
//!   outside the loop and match through the `CompiledFilter` (by
//!   convention bound as `cf`, which this pass exempts).
//!
//! `P002`/`P003` are source scans in the `L0xx` mold (see
//! [`crate::concurrency`]): line-based, string-literal-blind, with
//! `mp-lint: allow(PXXX)` suppression on the line or the line above. The
//! pattern literals are assembled with `concat!` so this file never
//! matches its own patterns.

use std::collections::BTreeMap;
use std::path::Path;

use mp_docstore::query::Predicate;
use mp_docstore::Filter;
use serde_json::Value;

use crate::concurrency::{match_positions, parse_allows, receiver_before, split_comment};
use crate::diagnostics::Diagnostic;
use crate::query::collect_conjuncts;
use crate::schema::CollectionSchema;

/// A predicate the planner can turn into an index probe.
fn is_sargable(p: &Predicate) -> bool {
    matches!(
        p,
        Predicate::Eq(_)
            | Predicate::In(_)
            | Predicate::Gt(_)
            | Predicate::Gte(_)
            | Predicate::Lt(_)
            | Predicate::Lte(_)
    )
}

/// Flag filters whose only possible plan is a full collection scan, no
/// matter what indexes exist.
pub fn analyze_query_perf(raw: &Value, schema: &CollectionSchema) -> Vec<Diagnostic> {
    // Scanning an empty collection costs nothing; warning would mislead.
    if schema.total_docs == 0 {
        return Vec::new();
    }
    let Ok(filter) = Filter::parse(raw) else {
        return Vec::new(); // Q000's job
    };
    let mut conj: BTreeMap<String, Vec<&Predicate>> = BTreeMap::new();
    let mut branches: Vec<&Filter> = Vec::new();
    collect_conjuncts(&filter, "", &mut conj, &mut branches);

    let constrained = !conj.is_empty();
    let sargable = conj.values().flatten().any(|p| is_sargable(p));
    let mut out = Vec::new();
    if constrained && !sargable {
        let listed = conj
            .keys()
            .map(|p| format!("`{p}`"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push(
            Diagnostic::warning(
                "P001",
                conj.keys().next().map(String::as_str).unwrap_or("$filter"),
                format!(
                    "no sargable predicate on {listed}: no index can serve this \
                     query, forcing a scan of all {} documents of `{}`",
                    schema.total_docs, schema.collection
                ),
            )
            .with_suggestion("add an equality, `$in`, or range bound on an indexable field"),
        );
    } else if !constrained && !branches.is_empty() {
        out.push(
            Diagnostic::warning(
                "P001",
                "$filter",
                format!(
                    "the root of this filter is a pure disjunction, which the \
                     planner cannot index — it scans all {} documents of `{}`",
                    schema.total_docs, schema.collection
                ),
            )
            .with_suggestion("conjoin a selective predicate at the root, outside the `$or`/`$nor`"),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// P002 / P003: source scans over workspace Rust files.
// ---------------------------------------------------------------------------

const MAP_OPEN: &str = concat!(".map(", "|");
const CLONE_CALL: &str = concat!(").clone", "()");
const AS_REF_CLONE: &str = concat!(".as_ref()", ".clone", "()");
const MATCHES_CALL: &str = concat!(".matches", "(");
/// Same-line constructs that run their body once per element.
const LOOP_MARKERS: &[&str] = &[
    "for ",
    "while ",
    concat!(".filter", "("),
    concat!(".map", "("),
    concat!(".any", "("),
    concat!(".all", "("),
    concat!(".retain", "("),
    concat!(".for_each", "("),
    concat!(".position", "("),
    concat!(".find", "("),
];

/// `pos` points just past `.map(|`; returns the closure binding and the
/// byte offset where its body starts, if the parameter list is a bare
/// identifier (`|d|`).
fn closure_binding(code: &str, pos: usize) -> Option<(&str, usize)> {
    let rest = &code[pos..];
    let end = rest.find('|')?;
    let name = rest[..end].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    Some((name, pos + end + 1))
}

/// Does the closure body starting at `body` deep-clone the binding?
fn body_deep_clones(code: &str, body: usize, name: &str) -> bool {
    let body = code[body..].trim_start();
    // `(*d).clone()` / `(**d).clone()`
    for stars in ["(*", "(**"] {
        if let Some(rest) = body.strip_prefix(&format!("{stars}{name}")) {
            if rest.starts_with(CLONE_CALL) {
                return true;
            }
        }
    }
    // `d.as_ref().clone()`
    body.strip_prefix(name)
        .is_some_and(|rest| rest.starts_with(AS_REF_CLONE))
}

/// From the `(` of a call at `open`, count top-level arguments on this
/// line; `None` when the paren does not close on the line.
fn args_on_line(code: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    for c in code[open..].chars() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(if any { commas + 1 } else { 0 });
                }
            }
            ',' if depth == 1 => commas += 1,
            c if depth >= 1 && !c.is_whitespace() => any = true,
            _ => {}
        }
    }
    None
}

/// A receiver the compiled-filter convention sanctions: the `cf` binding
/// or anything self-describing (`compiled_filter.matches(...)`).
fn compiled_receiver(receiver: &str) -> bool {
    let last = receiver.rsplit(['.', ':']).next().unwrap_or(receiver);
    last == "cf" || last.contains("compiled")
}

/// Scan one Rust source file for `P002`/`P003`; `path` is used verbatim
/// in diagnostics. Files named `query.rs` under `docstore/src` are exempt
/// from `P003` — that file *is* the matcher implementation and its
/// recursive `$and`/`$or` walks are the thing being compiled away.
pub fn analyze_perf_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let p003_applies = !path.replace('\\', "/").ends_with("docstore/src/query.rs");
    let mut diags = Vec::new();
    let mut allow_from_prev: Vec<String> = Vec::new();

    for (idx, raw_line) in source.lines().enumerate() {
        let lineno = idx + 1;
        let (code, comment) = split_comment(raw_line);
        let trimmed = code.trim();

        let mut allowed = std::mem::take(&mut allow_from_prev);
        allowed.extend(parse_allows(comment));
        if trimmed.is_empty() {
            allow_from_prev = allowed;
            continue;
        }
        let is_allowed = |code: &str| allowed.iter().any(|a| a == code);
        let at = format!("{path}:{lineno}");

        // P002: `.map(|d| (*d).clone())` and friends.
        if !is_allowed("P002") {
            for pos in match_positions(code, MAP_OPEN) {
                if let Some((name, body)) = closure_binding(code, pos + MAP_OPEN.len()) {
                    if body_deep_clones(code, body, name) {
                        diags.push(
                            Diagnostic::warning(
                                "P002",
                                at.clone(),
                                format!("closure deep-clones `{name}` out of a shared result set"),
                            )
                            .with_suggestion(
                                "keep the Arc handles (`.cloned()` copies pointers, not \
                                 documents); materialize only at a serialization boundary, \
                                 annotated `mp-lint: allow(P002)`",
                            ),
                        );
                    }
                }
            }
        }

        // P003: uncompiled `.matches(` inside a per-element construct.
        if p003_applies && !is_allowed("P003") {
            for pos in match_positions(code, MATCHES_CALL) {
                let in_loop = LOOP_MARKERS
                    .iter()
                    .any(|m| match_positions(code, m).iter().any(|&mp| mp < pos));
                if !in_loop {
                    continue;
                }
                let receiver = receiver_before(code, pos);
                // Chained temporaries (`Filter::parse(x)?.matches(..)`)
                // yield an empty receiver: per-iteration filters, exempt.
                if receiver.is_empty() || compiled_receiver(&receiver) {
                    continue;
                }
                // `Filter::matches` takes one argument; two or more is a
                // different `matches` (e.g. the structure matcher).
                let open = pos + MATCHES_CALL.len() - 1;
                if args_on_line(code, open).is_some_and(|n| n >= 2) {
                    continue;
                }
                diags.push(
                    Diagnostic::warning(
                        "P003",
                        at.clone(),
                        format!(
                            "`{receiver}.matches(...)` re-parses paths per document inside \
                             a loop"
                        ),
                    )
                    .with_suggestion(
                        "call `Filter::compile()` once outside the loop and match through \
                         the `CompiledFilter` (bind it `cf`)",
                    ),
                );
            }
        }
    }
    diags
}

/// Recursively scan every `.rs` file under `root` for `P002`/`P003`,
/// skipping build output, vendored shims, and VCS metadata — the same
/// exclusions as [`crate::concurrency::analyze_tree`].
pub fn analyze_perf_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if matches!(name, "target" | "shims" | ".git") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let source = std::fs::read_to_string(&path)?;
                let shown = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .display()
                    .to_string();
                diags.extend(analyze_perf_source(&shown, &source));
            }
        }
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeSet;
    use serde_json::json;

    fn schema() -> CollectionSchema {
        CollectionSchema {
            sampled: 8,
            total_docs: 8,
            ..CollectionSchema::with_fields(
                "tasks",
                [
                    ("chemsys", TypeSet::STRING),
                    ("nsites", TypeSet::INT),
                    ("elements", TypeSet::ARRAY.union(TypeSet::STRING)),
                ],
                ["chemsys"],
            )
        }
    }

    #[test]
    fn p001_non_sargable_root_flags_forced_collscan() {
        let diags = analyze_query_perf(&json!({"chemsys": {"$regex": "Li"}}), &schema());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "P001");
        // Even on the indexed field: `$exists` cannot drive a probe.
        let diags = analyze_query_perf(&json!({"chemsys": {"$exists": true}}), &schema());
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn p001_pure_disjunction_root_flags() {
        let diags = analyze_query_perf(
            &json!({"$or": [{"chemsys": "Li-O"}, {"nsites": 2}]}),
            &schema(),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "P001");
    }

    #[test]
    fn sargable_roots_do_not_flag() {
        // Even an *unindexed* sargable predicate is Q004's territory,
        // not P001's: an index would fix it.
        assert!(analyze_query_perf(&json!({"nsites": {"$gte": 2}}), &schema()).is_empty());
        assert!(analyze_query_perf(&json!({"chemsys": "Li-O"}), &schema()).is_empty());
        // A sargable anchor next to the disjunction rescues the plan.
        let anchored = json!({"nsites": 1, "$or": [{"chemsys": "Li-O"}, {"nsites": 2}]});
        assert!(analyze_query_perf(&anchored, &schema()).is_empty());
        // The unconstrained find-all is a deliberate dump, not a mistake.
        assert!(analyze_query_perf(&json!({}), &schema()).is_empty());
    }

    #[test]
    fn empty_collection_is_exempt() {
        let empty = CollectionSchema::with_fields("staging", [], []);
        let diags = analyze_query_perf(&json!({"x": {"$regex": "a"}}), &empty);
        assert!(diags.is_empty(), "{diags:?}");
    }

    // ---- P002 ----

    #[test]
    fn p002_map_deref_clone_flags() {
        for body in ["(*d)", "(**d)"] {
            let src = format!(
                "let rows: Vec<Value> = docs.iter(){}|d| {body}{}{}).collect();\n",
                concat!(".map", "("),
                concat!(".clone", "("),
                ")"
            );
            let diags = analyze_perf_source("x.rs", &src);
            assert_eq!(diags.len(), 1, "{body}: {diags:?}");
            assert_eq!(diags[0].code, "P002");
        }
        let src = concat!(
            "let rows = docs.iter()",
            ".map(",
            "|d| d",
            ".as_ref()",
            ".clone",
            "()).collect();\n"
        );
        let diags = analyze_perf_source("x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn p002_arc_preserving_maps_are_clean() {
        // Cloning the handle, projecting, or cloning a different binding
        // is not a deep copy of the result set.
        for src in [
            concat!("let r = docs.iter()", ".map(", "|d| Arc::clone(d));\n"),
            concat!("let r = docs.iter().filter(|d| p(d))", ".cloned();\n"),
            concat!("let r = docs.iter()", ".map(", "|d| project(d));\n"),
            concat!(
                "let r = xs.iter()",
                ".map(",
                "|(k, v)| (*k).clone",
                "());\n"
            ),
        ] {
            let diags = analyze_perf_source("x.rs", src);
            assert!(diags.is_empty(), "{src}: {diags:?}");
        }
    }

    #[test]
    fn p002_allow_comment_suppresses() {
        let src = concat!(
            "// mp-lint: allow(P002) — serialization boundary\n",
            "let rows = docs.iter()",
            ".map(",
            "|d| (*d)",
            ".clone",
            "()).collect();\n"
        );
        assert!(analyze_perf_source("x.rs", src).is_empty());
    }

    // ---- P003 ----

    #[test]
    fn p003_uncompiled_matches_in_loop_flags() {
        let src = concat!(
            "let out: Docs = docs.into_iter().filter(|d| f",
            ".matches",
            "(d)).collect();\n"
        );
        let diags = analyze_perf_source("x.rs", src);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "P003");
        assert!(diags[0].message.starts_with("`f."), "{}", diags[0].message);
    }

    #[test]
    fn p003_compiled_receiver_is_clean() {
        for src in [
            concat!(
                "let out: Docs = docs.into_iter().filter(|d| cf",
                ".matches",
                "(d)).collect();\n"
            ),
            concat!(
                "let n = docs.iter().filter(|d| compiled_filter",
                ".matches",
                "(d)).count();\n"
            ),
        ] {
            let diags = analyze_perf_source("x.rs", src);
            assert!(diags.is_empty(), "{src}: {diags:?}");
        }
    }

    #[test]
    fn p003_single_calls_and_chained_parses_are_clean() {
        for src in [
            // Not in a loop construct: one match, one cost.
            concat!("if f", ".matches", "(&doc) {\n"),
            // Per-iteration filter: the parse is inherent, receiver empty.
            concat!(
                "for c in children { let ok = Filter::parse(q)?",
                ".matches",
                "(&merged); }\n"
            ),
            // Two arguments: a different `matches` entirely.
            concat!(
                "for j in 0..n { if self",
                ".matches",
                "(s, &others[j]) { break; } }\n"
            ),
        ] {
            let diags = analyze_perf_source("x.rs", src);
            assert!(diags.is_empty(), "{src}: {diags:?}");
        }
    }

    #[test]
    fn p003_matcher_implementation_file_is_exempt() {
        let src = concat!(
            "if !self.and.iter().all(|c| c",
            ".matches",
            "(doc)) { return false; }\n"
        );
        assert!(analyze_perf_source("crates/docstore/src/query.rs", src).is_empty());
        assert_eq!(analyze_perf_source("crates/other/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn workspace_is_perf_clean() {
        // The acceptance gate: the whole workspace reports zero P002/P003
        // findings. The sanctioned serialization boundary is annotated.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = analyze_perf_tree(&root).expect("scan workspace");
        assert!(
            diags.is_empty(),
            "workspace P002/P003 findings:\n{}",
            crate::diagnostics::render(&diags)
        );
    }
}
