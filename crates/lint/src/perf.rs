//! Pass 5: performance lints — query shapes the planner can never
//! accelerate.
//!
//! Codes:
//! - `P001` (warning): forced collection scan. The root conjunctive scope
//!   carries constraints, but none of them is *sargable* (`$eq`, `$in`,
//!   or a range bound) — or the root is a pure `$or`/`$nor` disjunction,
//!   which the planner treats as opaque. Whatever indexes exist, the only
//!   access path is a walk over every document. Distinct from `Q004`,
//!   which fires when sargable predicates exist but no index covers them:
//!   `Q004` is fixed by creating an index, `P001` only by reshaping the
//!   query.

use std::collections::BTreeMap;

use mp_docstore::query::Predicate;
use mp_docstore::Filter;
use serde_json::Value;

use crate::diagnostics::Diagnostic;
use crate::query::collect_conjuncts;
use crate::schema::CollectionSchema;

/// A predicate the planner can turn into an index probe.
fn is_sargable(p: &Predicate) -> bool {
    matches!(
        p,
        Predicate::Eq(_)
            | Predicate::In(_)
            | Predicate::Gt(_)
            | Predicate::Gte(_)
            | Predicate::Lt(_)
            | Predicate::Lte(_)
    )
}

/// Flag filters whose only possible plan is a full collection scan, no
/// matter what indexes exist.
pub fn analyze_query_perf(raw: &Value, schema: &CollectionSchema) -> Vec<Diagnostic> {
    // Scanning an empty collection costs nothing; warning would mislead.
    if schema.total_docs == 0 {
        return Vec::new();
    }
    let Ok(filter) = Filter::parse(raw) else {
        return Vec::new(); // Q000's job
    };
    let mut conj: BTreeMap<String, Vec<&Predicate>> = BTreeMap::new();
    let mut branches: Vec<&Filter> = Vec::new();
    collect_conjuncts(&filter, "", &mut conj, &mut branches);

    let constrained = !conj.is_empty();
    let sargable = conj.values().flatten().any(|p| is_sargable(p));
    let mut out = Vec::new();
    if constrained && !sargable {
        let listed = conj
            .keys()
            .map(|p| format!("`{p}`"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push(
            Diagnostic::warning(
                "P001",
                conj.keys().next().map(String::as_str).unwrap_or("$filter"),
                format!(
                    "no sargable predicate on {listed}: no index can serve this \
                     query, forcing a scan of all {} documents of `{}`",
                    schema.total_docs, schema.collection
                ),
            )
            .with_suggestion("add an equality, `$in`, or range bound on an indexable field"),
        );
    } else if !constrained && !branches.is_empty() {
        out.push(
            Diagnostic::warning(
                "P001",
                "$filter",
                format!(
                    "the root of this filter is a pure disjunction, which the \
                     planner cannot index — it scans all {} documents of `{}`",
                    schema.total_docs, schema.collection
                ),
            )
            .with_suggestion("conjoin a selective predicate at the root, outside the `$or`/`$nor`"),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TypeSet;
    use serde_json::json;

    fn schema() -> CollectionSchema {
        CollectionSchema {
            sampled: 8,
            total_docs: 8,
            ..CollectionSchema::with_fields(
                "tasks",
                [
                    ("chemsys", TypeSet::STRING),
                    ("nsites", TypeSet::INT),
                    ("elements", TypeSet::ARRAY.union(TypeSet::STRING)),
                ],
                ["chemsys"],
            )
        }
    }

    #[test]
    fn p001_non_sargable_root_flags_forced_collscan() {
        let diags = analyze_query_perf(&json!({"chemsys": {"$regex": "Li"}}), &schema());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "P001");
        // Even on the indexed field: `$exists` cannot drive a probe.
        let diags = analyze_query_perf(&json!({"chemsys": {"$exists": true}}), &schema());
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn p001_pure_disjunction_root_flags() {
        let diags = analyze_query_perf(
            &json!({"$or": [{"chemsys": "Li-O"}, {"nsites": 2}]}),
            &schema(),
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "P001");
    }

    #[test]
    fn sargable_roots_do_not_flag() {
        // Even an *unindexed* sargable predicate is Q004's territory,
        // not P001's: an index would fix it.
        assert!(analyze_query_perf(&json!({"nsites": {"$gte": 2}}), &schema()).is_empty());
        assert!(analyze_query_perf(&json!({"chemsys": "Li-O"}), &schema()).is_empty());
        // A sargable anchor next to the disjunction rescues the plan.
        let anchored = json!({"nsites": 1, "$or": [{"chemsys": "Li-O"}, {"nsites": 2}]});
        assert!(analyze_query_perf(&anchored, &schema()).is_empty());
        // The unconstrained find-all is a deliberate dump, not a mistake.
        assert!(analyze_query_perf(&json!({}), &schema()).is_empty());
    }

    #[test]
    fn empty_collection_is_exempt() {
        let empty = CollectionSchema::with_fields("staging", [], []);
        let diags = analyze_query_perf(&json!({"x": {"$regex": "a"}}), &empty);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
