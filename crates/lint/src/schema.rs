//! Per-collection schema inference: field → type lattice, plus index
//! metadata. This is what makes the query analyzer "schema-aware".

use std::collections::BTreeMap;
use std::fmt;

use mp_docstore::Collection;
use serde_json::Value;

/// A set of JSON types a field has been observed to hold (a small lattice:
/// ⊥ = empty, ⊤ = everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TypeSet(u8);

impl TypeSet {
    /// No observed types.
    pub const EMPTY: TypeSet = TypeSet(0);
    /// JSON null.
    pub const NULL: TypeSet = TypeSet(1);
    /// Booleans.
    pub const BOOL: TypeSet = TypeSet(2);
    /// Integer numbers.
    pub const INT: TypeSet = TypeSet(4);
    /// Double numbers.
    pub const DOUBLE: TypeSet = TypeSet(8);
    /// Strings.
    pub const STRING: TypeSet = TypeSet(16);
    /// Arrays.
    pub const ARRAY: TypeSet = TypeSet(32);
    /// Objects.
    pub const OBJECT: TypeSet = TypeSet(64);
    /// Either numeric type.
    pub const NUMBER: TypeSet = TypeSet(4 | 8);

    /// The type of one concrete value.
    pub fn of(v: &Value) -> TypeSet {
        match v {
            Value::Null => TypeSet::NULL,
            Value::Bool(_) => TypeSet::BOOL,
            Value::Number(n) if n.is_f64() => TypeSet::DOUBLE,
            Value::Number(_) => TypeSet::INT,
            Value::String(_) => TypeSet::STRING,
            Value::Array(_) => TypeSet::ARRAY,
            Value::Object(_) => TypeSet::OBJECT,
        }
    }

    /// Union of two sets.
    pub fn union(self, other: TypeSet) -> TypeSet {
        TypeSet(self.0 | other.0)
    }

    /// True when the sets share at least one type.
    pub fn intersects(self, other: TypeSet) -> bool {
        self.0 & other.0 != 0
    }

    /// True when no type was observed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// True when `other`'s types are all contained in `self`.
    pub fn contains(self, other: TypeSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Human-readable type names in the set.
    pub fn names(self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (bit, name) in [
            (TypeSet::NULL, "null"),
            (TypeSet::BOOL, "bool"),
            (TypeSet::INT, "int"),
            (TypeSet::DOUBLE, "double"),
            (TypeSet::STRING, "string"),
            (TypeSet::ARRAY, "array"),
            (TypeSet::OBJECT, "object"),
        ] {
            if self.intersects(bit) {
                out.push(name);
            }
        }
        out
    }
}

impl fmt::Display for TypeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            f.write_str("unknown")
        } else {
            f.write_str(&self.names().join("|"))
        }
    }
}

/// Inferred shape of one collection: dotted field paths → observed types,
/// plus declared index paths.
#[derive(Debug, Clone, Default)]
pub struct CollectionSchema {
    /// Collection name (for diagnostics).
    pub collection: String,
    /// Dotted path → types observed at that path. Array fields contribute
    /// both `array` and their element types at the same path, mirroring the
    /// store's multikey index / implicit-traversal semantics.
    pub fields: BTreeMap<String, TypeSet>,
    /// Paths with a declared index (`_id` is always implicitly indexed).
    pub indexed: Vec<String>,
    /// How many documents were sampled.
    pub sampled: usize,
    /// Total documents in the collection at inference time.
    pub total_docs: usize,
}

impl CollectionSchema {
    /// Infer a schema by sampling up to `sample` documents plus the
    /// collection's index metadata.
    pub fn infer(coll: &Collection, sample: usize) -> CollectionSchema {
        let docs = coll.dump();
        let total_docs = docs.len();
        let mut fields = BTreeMap::new();
        let mut sampled = 0;
        for doc in docs.iter().take(sample) {
            sampled += 1;
            walk(doc, "", &mut fields);
        }
        CollectionSchema {
            collection: coll.name().to_string(),
            fields,
            indexed: coll.index_paths(),
            sampled,
            total_docs,
        }
    }

    /// Build a schema by hand (tests, declarative contracts).
    pub fn with_fields(
        collection: impl Into<String>,
        fields: impl IntoIterator<Item = (&'static str, TypeSet)>,
        indexed: impl IntoIterator<Item = &'static str>,
    ) -> CollectionSchema {
        CollectionSchema {
            collection: collection.into(),
            fields: fields
                .into_iter()
                .map(|(k, t)| (k.to_string(), t))
                .collect(),
            indexed: indexed.into_iter().map(str::to_string).collect(),
            sampled: 0,
            total_docs: 0,
        }
    }

    /// Observed types at `path` (empty set when never observed).
    pub fn types_at(&self, path: &str) -> TypeSet {
        self.fields.get(path).copied().unwrap_or(TypeSet::EMPTY)
    }

    /// True when `path` is a known field, an interior object node on the way
    /// to one (`output` when `output.energy` exists), or `_id`.
    pub fn has_field(&self, path: &str) -> bool {
        if path == "_id" || self.fields.contains_key(path) {
            return true;
        }
        let prefix = format!("{path}.");
        self.fields.keys().any(|k| k.starts_with(&prefix))
    }

    /// True when a declared index (or the implicit `_id` index) covers `path`.
    pub fn is_indexed(&self, path: &str) -> bool {
        path == "_id" || self.indexed.iter().any(|p| p == path)
    }
}

/// Record `v`'s type at `prefix` and recurse into containers.
fn walk(v: &Value, prefix: &str, fields: &mut BTreeMap<String, TypeSet>) {
    if !prefix.is_empty() {
        let entry = fields.entry(prefix.to_string()).or_insert(TypeSet::EMPTY);
        *entry = entry.union(TypeSet::of(v));
    }
    match v {
        Value::Object(m) => {
            for (k, child) in m.iter() {
                let child_path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(child, &child_path, fields);
            }
        }
        Value::Array(items) if !prefix.is_empty() => {
            // Multikey semantics: elements are observable at the array's own
            // path, and object elements expose their fields via implicit
            // dotted traversal.
            for item in items {
                walk(item, prefix, fields);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_docstore::Database;
    use serde_json::json;

    #[test]
    fn infers_field_types_and_indexes() {
        let db = Database::new();
        let coll = db.collection("tasks");
        coll.create_index("chemsys", false).unwrap();
        coll.insert_many(vec![
            json!({"chemsys": "Li-O", "nsites": 2, "output": {"energy": -1.5}}),
            json!({"chemsys": "Na-Cl", "nsites": 4, "output": {"energy": -3.0}, "tags": ["a", "b"]}),
        ])
        .unwrap();

        let schema = CollectionSchema::infer(&coll, 100);
        assert!(schema.types_at("chemsys").contains(TypeSet::STRING));
        assert!(schema.types_at("nsites").contains(TypeSet::INT));
        assert!(schema.types_at("output.energy").contains(TypeSet::DOUBLE));
        // Arrays record both the container and the element types.
        assert!(schema.types_at("tags").contains(TypeSet::ARRAY));
        assert!(schema.types_at("tags").contains(TypeSet::STRING));
        assert!(
            schema.has_field("output"),
            "interior object nodes are known fields"
        );
        assert!(schema.is_indexed("chemsys"));
        assert!(schema.is_indexed("_id"));
        assert!(!schema.is_indexed("nsites"));
        assert_eq!(schema.sampled, 2);
    }

    #[test]
    fn int_and_double_stay_distinct() {
        let db = Database::new();
        let coll = db.collection("c");
        coll.insert_one(json!({"n": 1, "x": 1.0})).unwrap();
        let schema = CollectionSchema::infer(&coll, 10);
        assert_eq!(schema.types_at("n"), TypeSet::INT);
        assert_eq!(schema.types_at("x"), TypeSet::DOUBLE);
    }
}
