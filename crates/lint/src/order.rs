//! Pass 9: interprocedural write-ahead ordering proofs (`O0xx`).
//!
//! The effects pass ([`crate::effects`]) proves *coverage* — every
//! durable mutation reaches the journal — but coverage says nothing
//! about *order*. A write-behind store journals after it applies; a
//! write-ahead store journals first, and acknowledges only after a
//! durability barrier. The difference is invisible to a reachability
//! analysis and fatal to crash recovery. This pass proves the order:
//! for every function it builds a **sequenced effect trace** — the
//! ordered list of journal-append / state-mutate / fsync-barrier /
//! frame / verify / apply events its body performs, with calls to
//! non-configured workspace functions inlined (memoized, cycle-cut,
//! and stopping at std-shadowed method names exactly like the effects
//! propagation) — and checks the write-ahead protocol against it.
//!
//! Codes (all `Error` severity — CI gates the workspace at zero):
//! - `O001`: a durable-surface method whose trace mutates state
//!   *before* its first journal append — the write-behind bug: a crash
//!   between the apply and the append loses a write the in-memory
//!   database already served.
//! - `O002`: a durable-surface method whose trace journals but never
//!   reaches a durability barrier after its last append — the ack
//!   returns before the bytes are on disk.
//! - `O003`: a configured journal appender whose own trace never
//!   frames a record — without length+checksum framing, recovery
//!   cannot tell a torn tail from corruption.
//! - `O004`: a durability barrier (direct `sync_all`/`sync_data`, or a
//!   call to a configured barrier function) inside a per-operation
//!   loop — each iteration pays the fsync that group commit exists to
//!   batch. Deliberately *not* transitive: only the function that owns
//!   the loop is charged.
//! - `O005`: a configured recovery path whose trace applies a frame
//!   before any checksum verification — corrupt bytes would replay
//!   into the live state.
//! - `O006`: an `mp-lint: allow(O...)` with no justification.
//! - `O007`: config drift — the [`OrderConfig`] names a function or
//!   durable type the workspace no longer defines, or `DESIGN.md`
//!   fails to document one of the `O0xx` codes.
//!
//! Suppression mirrors the effects pass: `mp-lint: allow(O001) — <justification>`
//! on the line, the line directly above, or the function's signature
//! line (or the comment block directly above it).
//!
//! Known granularity limits, by design: events are ordered by source
//! line (calls inlined at their call line keep their callee's internal
//! order, so a `commit()` helper that appends-then-barriers stays
//! correctly sequenced at its call site), but two events on *one* line
//! order by call-edge resolution, not column; and a closure argument's
//! events surface at the closure body's lines, not at the call that
//! runs it. The workspace write paths keep append, apply, and barrier
//! on distinct lines so the trace is faithful where it matters.

use std::collections::BTreeMap;
use std::path::Path;

use crate::callgraph::{scan_tree, CallGraph};
use crate::concurrency::match_positions;
use crate::diagnostics::Diagnostic;
use crate::flow::FnRef;
use crate::hotpath::loop_lines;
use crate::summary::mask_source;

/// Assembled with `concat!` so this file never matches its own pattern
/// literals (the other source passes scan this file too).
const ALLOW_MARK: &str = concat!("mp-", "lint: allow(");

/// Every code this pass can emit; `DESIGN.md` must document each one.
pub const ORDER_CODES: &[&str] = &["O001", "O002", "O003", "O004", "O005", "O006", "O007"];

/// Direct durability-barrier markers, matched against *masked* source
/// lines. Narrower than the effects `IO_PATTERNS` on purpose: a
/// buffered `flush()` is not a barrier, only an fsync is.
const BARRIER_PATTERNS: &[&str] = &[concat!(".sync_", "all("), concat!(".sync_", "data(")];

/// Method names shared with the std containers (same list as the
/// hotpath and effects passes): a bare `m.insert(k, v)` resolves by
/// name+arity to any same-named workspace method, so traces neither
/// enter nor leave functions with these names via method-call edges.
const STD_SHADOWED: &[&str] = &[
    "len",
    "get",
    "insert",
    "push",
    "remove",
    "extend",
    "clear",
    "is_empty",
    "contains",
    "contains_key",
    "entry",
    "iter",
];

/// Events per trace cap: a runaway inline (deep helper chains) stops
/// here rather than blowing up the scan. Workspace traces are tiny.
const EVENT_CAP: usize = 512;

/// Configuration: which functions emit which trace events, and where
/// the write-ahead protocol applies.
#[derive(Debug, Clone)]
pub struct OrderConfig {
    /// Journal-append primitives (each call is a `journal` event; each
    /// must frame its records — `O003`).
    pub journal_fns: Vec<FnRef>,
    /// Record-framing primitives (length + checksum).
    pub frame_fns: Vec<FnRef>,
    /// Durability-barrier primitives (group-commit fsync).
    pub barrier_fns: Vec<FnRef>,
    /// Frame-verification primitives (checksum gate on the read side).
    pub verify_fns: Vec<FnRef>,
    /// Replay-application primitives (a decoded op mutating the
    /// recovered database).
    pub apply_fns: Vec<FnRef>,
    /// Recovery entry points: their traces must verify before they
    /// apply (`O005`).
    pub recovery_fns: Vec<FnRef>,
    /// Collection mutation primitives (each call is a `mutate` event).
    pub mutation_fns: Vec<FnRef>,
    /// `impl` types forming the durable write surface: their methods
    /// must append before mutating (`O001`) and barrier after their
    /// last append (`O002`).
    pub durable_surface: Vec<String>,
}

impl OrderConfig {
    /// The Materials Project workspace defaults: `Persister::append_ops`
    /// is the journal seam, `frame_record`/`decode_frame` the checksum
    /// framing gate, `GroupCommit::sync_to` the group-commit barrier,
    /// `JournalOp::apply` the replay application,
    /// `Persister::recover_with_report` the recovery entry point, the
    /// `Collection` primitives (plus `Database::drop_collection`)
    /// mutate, and `DurableDatabase` is the write-ahead surface.
    pub fn materials_project_defaults() -> Self {
        let parse = |v: &[&str]| v.iter().map(|s| FnRef::parse(s)).collect();
        OrderConfig {
            journal_fns: parse(&["Persister::append_ops"]),
            frame_fns: parse(&["frame_record"]),
            barrier_fns: parse(&["GroupCommit::sync_to"]),
            verify_fns: parse(&["decode_frame"]),
            apply_fns: parse(&["JournalOp::apply"]),
            recovery_fns: parse(&["Persister::recover_with_report"]),
            mutation_fns: parse(&[
                "Collection::insert_one",
                "Collection::update_one",
                "Collection::update_many",
                "Collection::upsert",
                "Collection::find_one_and_update",
                "Collection::delete_one",
                "Collection::delete_many",
                "Collection::create_index",
                "Collection::drop_index",
                "Collection::clear",
                "Database::drop_collection",
            ]),
            durable_surface: vec!["DurableDatabase".to_string()],
        }
    }
}

/// One event in a sequenced trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Journal,
    Mutate,
    Barrier,
    Frame,
    Verify,
    Apply,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Journal => "journal",
            Kind::Mutate => "mutate",
            Kind::Barrier => "barrier",
            Kind::Frame => "frame",
            Kind::Verify => "verify",
            Kind::Apply => "apply",
        }
    }
}

#[derive(Debug, Clone)]
struct Event {
    kind: Kind,
    /// 1-based line in the *root* function's file where the event
    /// surfaces (the call line, for inlined events).
    line: usize,
    /// Inline provenance: the chain of callee indices the event came
    /// through (empty for a direct event).
    via: Vec<usize>,
}

/// One sequenced-trace event, for export into the annotated call graph
/// (`mp-lint callgraph --json`).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// `journal` / `mutate` / `barrier` / `frame` / `verify` / `apply`.
    pub kind: &'static str,
    /// 1-based line in the owning function's file.
    pub line: usize,
    /// Qualified names of the call chain the event was inlined through.
    pub via: Vec<String>,
}

/// `allow(...)` codes named on a raw line via the mp-lint marker, plus
/// whether a justification follows the closing paren.
fn order_allows(raw: &str) -> (Vec<String>, bool) {
    let Some(start) = raw.find(ALLOW_MARK) else {
        return (Vec::new(), true);
    };
    let rest = &raw[start + ALLOW_MARK.len()..];
    let Some(end) = rest.find(')') else {
        return (Vec::new(), true);
    };
    let codes = rest[..end]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    let justification = rest[end + 1..]
        .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '-' | ':' | '.' | ','));
    (codes, justification.chars().count() >= 8)
}

/// The fn-level suppression line for a signature on 1-based `fn_line`:
/// the signature line itself, or any line of the contiguous
/// comment/attribute block directly above it.
fn fn_allow_line(raw_lines: &[String], fn_line: usize) -> &str {
    let sig = raw_lines
        .get(fn_line.wrapping_sub(1))
        .map(String::as_str)
        .unwrap_or("");
    if sig.contains(ALLOW_MARK) {
        return sig;
    }
    let mut idx = fn_line.wrapping_sub(1);
    while idx >= 1 {
        let above = raw_lines.get(idx - 1).map(String::as_str).unwrap_or("");
        let lead = above.trim_start();
        if !lead.starts_with("//") && !lead.starts_with("#[") {
            break;
        }
        if above.contains(ALLOW_MARK) {
            return above;
        }
        idx -= 1;
    }
    sig
}

/// Per-file scan artifacts: raw lines (for allow comments) and masked
/// lines (for structural/pattern scanning).
struct FileArt {
    raw: Vec<String>,
    masked: Vec<String>,
}

impl FileArt {
    /// Is `code` allowed at 1-based `line`, by an inline comment, the
    /// line directly above, or the enclosing function level?
    fn allowed(&self, code: &str, line: usize, fn_line: usize) -> bool {
        let fn_level = fn_allow_line(&self.raw, fn_line);
        [
            self.raw.get(line.wrapping_sub(1)).map(String::as_str),
            self.raw.get(line.wrapping_sub(2)).map(String::as_str),
            Some(fn_level),
        ]
        .into_iter()
        .flatten()
        .any(|src| order_allows(src).0.iter().any(|c| c == code))
    }
}

/// `(body-open line, body-open column, end line)` of the function whose
/// signature starts at 1-based `fn_line`, by brace matching over the
/// masked text.
fn fn_extent(masked: &[String], fn_line: usize) -> Option<(usize, usize, usize)> {
    let mut open: Option<(usize, usize)> = None;
    let mut depth = 0i64;
    for (idx, line) in masked.iter().enumerate().skip(fn_line.saturating_sub(1)) {
        for (col, c) in line.char_indices() {
            match c {
                '{' => {
                    depth += 1;
                    if open.is_none() {
                        open = Some((idx + 1, col));
                    }
                }
                '}' if open.is_some() => {
                    depth -= 1;
                    if depth == 0 {
                        let (ol, oc) = open.unwrap_or((idx + 1, col));
                        return Some((ol, oc, idx + 1));
                    }
                }
                _ => {}
            }
        }
    }
    open.map(|(ol, oc)| (ol, oc, masked.len()))
}

/// Every masked body line of function `i` (1-based), with the signature
/// clipped off the body-open line.
fn body_lines<'a>(
    graph: &CallGraph,
    arts: &'a BTreeMap<&str, FileArt>,
    i: usize,
) -> Vec<(usize, &'a str)> {
    let f = &graph.fns[i];
    let Some(art) = arts.get(f.file.as_str()) else {
        return Vec::new();
    };
    let Some((ol, oc, end)) = fn_extent(&art.masked, f.line) else {
        return Vec::new();
    };
    (ol..=end)
        .map(|lineno| {
            let full = art.masked.get(lineno - 1).map(String::as_str).unwrap_or("");
            let seg = if lineno == ol {
                full.get(oc..).unwrap_or("")
            } else {
                full
            };
            (lineno, seg)
        })
        .collect()
}

fn matches_any(seg: &str, pats: &[&str]) -> bool {
    pats.iter().any(|p| !match_positions(seg, p).is_empty())
}

/// Resolve a ref list against the graph; every ref with zero matches is
/// one `O007` (config drift would silently disable the pass).
fn resolve(
    graph: &CallGraph,
    refs: &[FnRef],
    kind: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<bool> {
    let mut mask = vec![false; graph.fns.len()];
    for r in refs {
        let mut hit = false;
        for (i, f) in graph.fns.iter().enumerate() {
            if r.is_match(f) {
                mask[i] = true;
                hit = true;
            }
        }
        if !hit {
            diags.push(
                Diagnostic::error(
                    "O007",
                    r.display(),
                    format!(
                        "order config names {kind} `{}` but the workspace defines no such \
                         function — the pass would silently skip it",
                        r.display()
                    ),
                )
                .with_suggestion(
                    "update OrderConfig (or materials_project_defaults) to match the renamed \
                     or removed function",
                ),
            );
        }
    }
    mask
}

/// The per-kind masks the trace builder classifies call edges with.
struct Masks {
    journal: Vec<bool>,
    frame: Vec<bool>,
    barrier: Vec<bool>,
    verify: Vec<bool>,
    apply: Vec<bool>,
    mutation: Vec<bool>,
    recovery: Vec<bool>,
}

impl Masks {
    /// The leaf event a call to function `v` contributes, if any. A
    /// configured function is a leaf: its internals are checked by its
    /// own trace, not re-inlined at every call site.
    fn classify(&self, v: usize) -> Option<Kind> {
        if self.journal[v] {
            Some(Kind::Journal)
        } else if self.frame[v] {
            Some(Kind::Frame)
        } else if self.barrier[v] {
            Some(Kind::Barrier)
        } else if self.verify[v] {
            Some(Kind::Verify)
        } else if self.apply[v] {
            Some(Kind::Apply)
        } else if self.mutation[v] {
            Some(Kind::Mutate)
        } else {
            None
        }
    }
}

fn resolve_masks(graph: &CallGraph, config: &OrderConfig, diags: &mut Vec<Diagnostic>) -> Masks {
    Masks {
        journal: resolve(graph, &config.journal_fns, "journal appender", diags),
        frame: resolve(graph, &config.frame_fns, "record framer", diags),
        barrier: resolve(graph, &config.barrier_fns, "durability barrier", diags),
        verify: resolve(graph, &config.verify_fns, "frame verifier", diags),
        apply: resolve(graph, &config.apply_fns, "replay application", diags),
        recovery: resolve(graph, &config.recovery_fns, "recovery entry point", diags),
        mutation: resolve(graph, &config.mutation_fns, "mutation primitive", diags),
    }
}

fn shadowed(graph: &CallGraph, v: usize) -> bool {
    let f = &graph.fns[v];
    f.impl_type.is_some() && STD_SHADOWED.contains(&f.name.as_str())
}

/// The sequenced trace of function `i`: its body lines in order, each
/// contributing the leaf events of configured callees, the inlined
/// traces of non-configured callees (all surfacing at the call line,
/// preserving the callee's internal order), and direct barrier
/// patterns. Memoized; cycles contribute nothing on re-entry.
fn trace_of(
    i: usize,
    graph: &CallGraph,
    arts: &BTreeMap<&str, FileArt>,
    masks: &Masks,
    memo: &mut Vec<Option<Vec<Event>>>,
    visiting: &mut Vec<bool>,
) -> Vec<Event> {
    if let Some(t) = &memo[i] {
        return t.clone();
    }
    if visiting[i] {
        return Vec::new();
    }
    visiting[i] = true;
    let mut calls_at: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(v, line) in &graph.out[i] {
        calls_at.entry(line).or_default().push(v);
    }
    let mut events: Vec<Event> = Vec::new();
    for (lineno, seg) in body_lines(graph, arts, i) {
        if events.len() >= EVENT_CAP {
            break;
        }
        if let Some(vs) = calls_at.get(&lineno) {
            for &v in vs {
                match masks.classify(v) {
                    Some(kind) => events.push(Event {
                        kind,
                        line: lineno,
                        via: Vec::new(),
                    }),
                    None if !shadowed(graph, v) => {
                        let sub = trace_of(v, graph, arts, masks, memo, visiting);
                        for e in sub {
                            if events.len() >= EVENT_CAP {
                                break;
                            }
                            let mut via = vec![v];
                            via.extend(e.via.iter().copied());
                            events.push(Event {
                                kind: e.kind,
                                line: lineno,
                                via,
                            });
                        }
                    }
                    None => {}
                }
            }
        }
        if matches_any(seg, BARRIER_PATTERNS) {
            events.push(Event {
                kind: Kind::Barrier,
                line: lineno,
                via: Vec::new(),
            });
        }
    }
    visiting[i] = false;
    memo[i] = Some(events.clone());
    events
}

fn build_traces(
    graph: &CallGraph,
    arts: &BTreeMap<&str, FileArt>,
    masks: &Masks,
) -> Vec<Vec<Event>> {
    let n = graph.fns.len();
    let mut memo: Vec<Option<Vec<Event>>> = vec![None; n];
    let mut visiting = vec![false; n];
    (0..n)
        .map(|i| trace_of(i, graph, arts, masks, &mut memo, &mut visiting))
        .collect()
}

fn build_arts(sources: &BTreeMap<String, String>) -> BTreeMap<&str, FileArt> {
    sources
        .iter()
        .map(|(p, s)| {
            (
                p.as_str(),
                FileArt {
                    raw: s.lines().map(str::to_string).collect(),
                    masked: mask_source(s).lines().map(str::to_string).collect(),
                },
            )
        })
        .collect()
}

/// ` (via \`a::b\` → \`c::d\`)` provenance suffix for diagnostics, or
/// nothing for a direct event. Chains longer than three hops elide the
/// middle.
fn describe_via(graph: &CallGraph, via: &[usize]) -> String {
    if via.is_empty() {
        return String::new();
    }
    let names: Vec<String> = if via.len() <= 3 {
        via.iter().map(|&v| graph.fns[v].qualified()).collect()
    } else {
        vec![
            graph.fns[via[0]].qualified(),
            "…".to_string(),
            graph.fns[via[via.len() - 1]].qualified(),
        ]
    };
    format!(
        " (via `{}`)",
        names
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>()
            .join("` → `")
    )
}

/// Sequenced traces for every function, aligned with `graph.fns`, with
/// provenance rendered as qualified names. This is what
/// `mp-lint callgraph --json` exports per function.
pub fn order_traces(
    graph: &CallGraph,
    sources: &BTreeMap<String, String>,
    config: &OrderConfig,
) -> Vec<Vec<TraceEvent>> {
    let arts = build_arts(sources);
    let mut sink = Vec::new();
    let masks = resolve_masks(graph, config, &mut sink);
    build_traces(graph, &arts, &masks)
        .into_iter()
        .map(|trace| {
            trace
                .into_iter()
                .map(|e| TraceEvent {
                    kind: e.kind.name(),
                    line: e.line,
                    via: e.via.iter().map(|&v| graph.fns[v].qualified()).collect(),
                })
                .collect()
        })
        .collect()
}

/// Edge → ordering-role map for the DOT rendering: every call edge
/// whose target is a configured ordering primitive is colored by the
/// event kind it contributes (`journal` green, `barrier` purple,
/// `mutate` gold, `frame`/`verify` blue, `apply` orange).
pub fn order_edge_roles(
    graph: &CallGraph,
    config: &OrderConfig,
) -> BTreeMap<(usize, usize), &'static str> {
    let mut sink = Vec::new();
    let masks = resolve_masks(graph, config, &mut sink);
    let mut roles = BTreeMap::new();
    for e in &graph.edges {
        if let Some(kind) = masks.classify(e.to) {
            roles.insert((e.from, e.to), kind.name());
        }
    }
    roles
}

/// Run the ordering pass over a prebuilt call graph. `sources` maps the
/// summary-relative file path of every scanned file to its raw text;
/// `design` is the text of `DESIGN.md` when available (its O-code
/// coverage is part of the O007 drift check).
pub fn analyze_order(
    graph: &CallGraph,
    sources: &BTreeMap<String, String>,
    config: &OrderConfig,
    design: Option<&str>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let arts = build_arts(sources);
    let masks = resolve_masks(graph, config, &mut diags);
    let traces = build_traces(graph, &arts, &masks);
    let n = graph.fns.len();

    // O006: a justification-free O-allow is wrong anywhere.
    for (path, art) in &arts {
        for (idx, raw) in art.raw.iter().enumerate() {
            if !raw.contains(ALLOW_MARK) {
                continue;
            }
            let (codes, justified) = order_allows(raw);
            if !justified && codes.iter().any(|code| code.starts_with('O')) {
                diags.push(
                    Diagnostic::error(
                        "O006",
                        format!("{path}:{}", idx + 1),
                        "`mp-lint: allow(O...)` has no justification".to_string(),
                    )
                    .with_suggestion(
                        "append a justification after the closing paren, e.g. \
                         `mp-lint: allow(O004) — bootstrap writes the initial manifest once`",
                    ),
                );
            }
        }
    }

    // O007 (surface half): every configured durable type must exist.
    for t in &config.durable_surface {
        if !graph.fns.iter().any(|f| f.impl_type.as_deref() == Some(t)) {
            diags.push(
                Diagnostic::error(
                    "O007",
                    t.clone(),
                    format!(
                        "order config names durable surface `{t}` but the workspace defines no \
                         methods on such a type — the write-ahead checks would silently skip it"
                    ),
                )
                .with_suggestion(
                    "update OrderConfig (or materials_project_defaults) to the renamed durable \
                     type",
                ),
            );
        }
    }

    // O001/O002: the write-ahead protocol on every durable-surface
    // method whose trace journals.
    for (i, trace) in traces.iter().enumerate().take(n) {
        let f = &graph.fns[i];
        let on_surface = f
            .impl_type
            .as_deref()
            .is_some_and(|t| config.durable_surface.iter().any(|s| s == t));
        if !on_surface {
            continue;
        }
        let first_journal = trace.iter().position(|e| e.kind == Kind::Journal);
        let first_mutate = trace.iter().position(|e| e.kind == Kind::Mutate);
        if let (Some(j), Some(m)) = (first_journal, first_mutate) {
            if m < j {
                let ev = &trace[m];
                if !arts[f.file.as_str()].allowed("O001", ev.line, f.line) {
                    diags.push(
                        Diagnostic::error(
                            "O001",
                            format!("{}:{}", f.file, ev.line),
                            format!(
                                "durable-surface method `{}` mutates state{} before its first \
                                 journal append at line {} — write-behind ordering: a crash \
                                 between the apply and the append loses a write the in-memory \
                                 database already served",
                                f.qualified(),
                                describe_via(graph, &ev.via),
                                trace[j].line
                            ),
                        )
                        .with_suggestion(
                            "append the JournalOp first (write-ahead), then apply in memory \
                             under the same guard so journal order is apply order",
                        ),
                    );
                }
            }
        }
        if let Some(j) = first_journal {
            let last_journal = trace
                .iter()
                .rposition(|e| e.kind == Kind::Journal)
                .unwrap_or(j);
            let ev = &trace[last_journal];
            let barriered = trace[last_journal + 1..]
                .iter()
                .any(|e| e.kind == Kind::Barrier);
            if !barriered && !arts[f.file.as_str()].allowed("O002", ev.line, f.line) {
                diags.push(
                    Diagnostic::error(
                        "O002",
                        format!("{}:{}", f.file, ev.line),
                        format!(
                            "durable-surface method `{}` returns after its journal append{} \
                             without a durability barrier — the caller's Ok arrives before the \
                             bytes reach disk, so a crash loses an acknowledged write",
                            f.qualified(),
                            describe_via(graph, &ev.via),
                        ),
                    )
                    .with_suggestion(
                        "issue the group-commit barrier (sync the WAL to the appended LSN) \
                         after releasing the journal guard and before returning Ok",
                    ),
                );
            }
        }
    }

    // O003: every configured journal appender must frame its records.
    for i in (0..n).filter(|&i| masks.journal[i]) {
        let f = &graph.fns[i];
        let frames = traces[i].iter().any(|e| e.kind == Kind::Frame);
        if !frames && !arts[f.file.as_str()].allowed("O003", f.line, f.line) {
            diags.push(
                Diagnostic::error(
                    "O003",
                    format!("{}:{}", f.file, f.line),
                    format!(
                        "journal appender `{}` writes records without checksum framing — \
                         recovery cannot distinguish a torn tail (safe to skip) from \
                         mid-file corruption (must stop replay)",
                        f.qualified()
                    ),
                )
                .with_suggestion(
                    "frame every record (length prefix + CRC32) through the configured frame \
                     helper before it hits the file",
                ),
            );
        }
    }

    // O005: every configured recovery path must verify before it
    // applies.
    for i in (0..n).filter(|&i| masks.recovery[i]) {
        let f = &graph.fns[i];
        let trace = &traces[i];
        let first_apply = trace.iter().position(|e| e.kind == Kind::Apply);
        let first_verify = trace.iter().position(|e| e.kind == Kind::Verify);
        let bad = match (first_apply, first_verify) {
            (Some(a), Some(v)) => a < v,
            (Some(_), None) => true,
            _ => false,
        };
        if bad {
            let ev = &trace[first_apply.unwrap_or(0)];
            if !arts[f.file.as_str()].allowed("O005", ev.line, f.line) {
                diags.push(
                    Diagnostic::error(
                        "O005",
                        format!("{}:{}", f.file, ev.line),
                        format!(
                            "recovery path `{}` applies a frame{} before any checksum \
                             verification — corrupt bytes would replay into the live state",
                            f.qualified(),
                            describe_via(graph, &ev.via),
                        ),
                    )
                    .with_suggestion(
                        "decode and checksum-verify each frame (length + CRC32) before \
                         applying its op to the recovered database",
                    ),
                );
            }
        }
    }

    // O004: a durability barrier inside a per-operation loop. Direct
    // patterns and direct calls to configured barrier fns only — the
    // function that owns the loop is charged, nothing transitive.
    for (i, f) in graph.fns.iter().enumerate() {
        let Some(art) = arts.get(f.file.as_str()) else {
            continue;
        };
        let Some((ol, oc, end)) = fn_extent(&art.masked, f.line) else {
            continue;
        };
        let hot = loop_lines(&art.masked, ol, oc, end);
        if hot.is_empty() {
            continue;
        }
        let mut calls_at: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(v, line) in &graph.out[i] {
            calls_at.entry(line).or_default().push(v);
        }
        for (lineno, seg) in body_lines(graph, &arts, i) {
            if !hot.contains(&lineno) {
                continue;
            }
            let direct = matches_any(seg, BARRIER_PATTERNS);
            let via_call = calls_at
                .get(&lineno)
                .is_some_and(|vs| vs.iter().any(|&v| masks.barrier[v]));
            if (direct || via_call) && !art.allowed("O004", lineno, f.line) {
                diags.push(
                    Diagnostic::error(
                        "O004",
                        format!("{}:{lineno}", f.file),
                        format!(
                            "durability barrier inside a per-operation loop in `{}` — every \
                             iteration pays a full fsync that group commit exists to batch",
                            f.qualified()
                        ),
                    )
                    .with_suggestion(
                        "hoist the barrier out of the loop: append every frame first, then \
                         issue one barrier for the batch's final LSN",
                    ),
                );
            }
        }
    }

    // O007 (second half): DESIGN.md must document every code — the
    // allow policy is part of the public contract.
    if let Some(text) = design {
        for code in ORDER_CODES {
            if !text.contains(code) {
                diags.push(
                    Diagnostic::error(
                        "O007",
                        "DESIGN.md",
                        format!(
                            "DESIGN.md does not document `{code}` — every ordering code and its \
                             allow policy must be specified"
                        ),
                    )
                    .with_suggestion("add the code to the ordering section of DESIGN.md"),
                );
            }
        }
    }

    diags
}

/// Scan the workspace at `root` and run the pass with the Materials
/// Project defaults; `root/DESIGN.md` participates in the O007 check
/// when present.
pub fn analyze_order_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let graph = scan_tree(root)?;
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    for f in &graph.fns {
        if !sources.contains_key(&f.file) {
            let text = std::fs::read_to_string(root.join(&f.file))?;
            sources.insert(f.file.clone(), text);
        }
    }
    let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
    Ok(analyze_order(
        &graph,
        &sources,
        &OrderConfig::materials_project_defaults(),
        design.as_deref(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize_source;
    use std::collections::BTreeSet;

    fn graph_and_sources(files: &[(&str, &str)]) -> (CallGraph, BTreeMap<String, String>) {
        let mut fns = Vec::new();
        let mut sources = BTreeMap::new();
        for (path, src) in files {
            fns.extend(summarize_source(path, src));
            sources.insert((*path).to_string(), (*src).to_string());
        }
        let mut deps = BTreeMap::new();
        deps.insert("a".to_string(), BTreeSet::new());
        (CallGraph::build(fns, &deps), sources)
    }

    fn cfg() -> OrderConfig {
        let parse = |v: &[&str]| v.iter().map(|s| FnRef::parse(s)).collect();
        OrderConfig {
            journal_fns: parse(&["Wal::append"]),
            frame_fns: parse(&["frame"]),
            barrier_fns: parse(&["Gc::wait_durable"]),
            verify_fns: parse(&["Rec::check"]),
            apply_fns: parse(&["Rec::apply_frame"]),
            recovery_fns: parse(&["Rec::replay"]),
            mutation_fns: parse(&["Coll::insert_doc"]),
            durable_surface: vec!["Dur".to_string()],
        }
    }

    /// A WAL store with the protocol done right: frame → append →
    /// apply → barrier, recovery verifies before it applies.
    const WAL_STORE: &str = concat!(
        "pub struct Wal;\nimpl Wal {\n",
        "  pub fn append(&mut self, op: &Op) -> u64 {\n",
        "    let b = frame(op);\n",
        "    self.sink(b)\n",
        "  }\n",
        "}\n",
        "pub fn frame(op: &Op) -> Vec<u8> { Vec::new() }\n",
        "pub struct Gc;\nimpl Gc {\n",
        "  pub fn wait_durable(&self, lsn: u64) {}\n",
        "}\n",
        "pub struct Coll;\nimpl Coll {\n",
        "  pub fn insert_doc(&self, d: Value) {}\n",
        "}\n",
        "pub struct Rec;\nimpl Rec {\n",
        "  pub fn check(&self, b: &[u8]) -> Frame { Frame }\n",
        "  pub fn apply_frame(&self, f: Frame) {}\n",
        "  pub fn replay(&self) {\n",
        "    let f = self.check(b);\n",
        "    self.apply_frame(f);\n",
        "  }\n",
        "}\n",
        "pub struct Dur;\nimpl Dur {\n",
        "  pub fn store_doc(&self, d: Value) {\n",
        "    let lsn = self.w.append(&op(d));\n",
        "    self.c.insert_doc(d);\n",
        "    self.g.wait_durable(lsn);\n",
        "  }\n",
        "}\n"
    );

    #[test]
    fn clean_wal_store_has_no_findings() {
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", WAL_STORE)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn o001_mutation_before_journal_append() {
        let src = WAL_STORE.replace(
            concat!(
                "    let lsn = self.w.append(&op(d));\n",
                "    self.c.insert_doc(d);\n"
            ),
            concat!(
                "    self.c.insert_doc(d);\n",
                "    let lsn = self.w.append(&op(d));\n"
            ),
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "O001");
        assert!(diags[0].message.contains("a::Dur::store_doc"));
    }

    #[test]
    fn o002_journal_without_barrier() {
        let src = WAL_STORE.replace("    self.g.wait_durable(lsn);\n", "");
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "O002");
        assert!(diags[0].message.contains("durability barrier"));
    }

    #[test]
    fn o002_sees_a_direct_fsync_as_a_barrier() {
        let src = WAL_STORE.replace(
            "    self.g.wait_durable(lsn);\n",
            concat!("    let _ = self.f.sync_", "data();\n"),
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn o003_journal_appender_without_framing() {
        let src = WAL_STORE.replace(
            "    let b = frame(op);\n    self.sink(b)\n",
            "    self.sink(op)\n",
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "O003");
        assert!(diags[0].message.contains("a::Wal::append"));
    }

    #[test]
    fn o004_fsync_inside_a_per_op_loop() {
        let extra = concat!(
            "impl Dur {\n",
            "  pub fn store_all(&self, ds: Vec<Value>) {\n",
            "    for d in ds {\n",
            "      let lsn = self.w.append(&op(d));\n",
            "      self.c.insert_doc(d);\n",
            "      self.g.wait_durable(lsn);\n",
            "    }\n",
            "  }\n",
            "}\n"
        );
        let src = format!("{WAL_STORE}{extra}");
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "O004");
        assert!(diags[0].message.contains("a::Dur::store_all"));
        // Hoisting the barrier out of the loop fixes it.
        let fixed = src.replace(
            concat!("      self.g.wait_durable(lsn);\n", "    }\n"),
            concat!("    }\n", "    self.g.wait_durable(lsn);\n"),
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &fixed)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn o005_recovery_applies_before_verifying() {
        let src = WAL_STORE.replace(
            concat!("    let f = self.check(b);\n", "    self.apply_frame(f);\n"),
            concat!("    self.apply_frame(f);\n", "    let f = self.check(b);\n"),
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "O005");
        assert!(diags[0].message.contains("a::Rec::replay"));
    }

    #[test]
    fn o006_unjustified_allow() {
        let src = format!("// {}O001)\n{WAL_STORE}", ALLOW_MARK);
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "O006");
    }

    #[test]
    fn o007_config_drift_and_design_coverage() {
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", WAL_STORE)]);
        let mut config = cfg();
        config.barrier_fns = vec![FnRef::parse("Gc::renamed_barrier")];
        let diags = analyze_order(&g, &s, &config, None);
        // The dangling ref plus the O002s it causes everywhere a
        // barrier used to resolve.
        assert!(diags.iter().any(|d| d.code == "O007"), "{diags:?}");
        // DESIGN.md must name every code.
        let design = "O001 O002 O003 O004 O005 O006"; // O007 missing
        let diags = analyze_order(&g, &s, &cfg(), Some(design));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "O007");
        assert!(diags[0].path == "DESIGN.md");
    }

    #[test]
    fn justified_allow_silences_o001() {
        let src = WAL_STORE.replace(
            concat!(
                "    let lsn = self.w.append(&op(d));\n",
                "    self.c.insert_doc(d);\n"
            ),
            &format!(
                concat!(
                    "    // {}O001) — bootstrap path rebuilds the journal from live state\n",
                    "    self.c.insert_doc(d);\n",
                    "    let lsn = self.w.append(&op(d));\n"
                ),
                ALLOW_MARK
            ),
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn inlined_commit_helper_keeps_its_internal_order() {
        // The helper appends then barriers; its events surface at the
        // call line in that order, so a mutate on a later line is
        // still write-ahead-clean (append precedes it in sequence).
        let extra = concat!(
            "impl Dur {\n",
            "  fn commit(&self, op: Op) -> u64 {\n",
            "    let lsn = self.w.append(&op);\n",
            "    self.g.wait_durable(lsn);\n",
            "    lsn\n",
            "  }\n",
            "  pub fn store_fast(&self, d: Value) {\n",
            "    self.commit(op(d));\n",
            "    self.c.insert_doc(d);\n",
            "  }\n",
            "}\n"
        );
        let src = format!("{WAL_STORE}{extra}");
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert!(diags.is_empty(), "{diags:?}");
        // And the trace export shows the provenance.
        let traces = order_traces(&g, &s, &cfg());
        let idx = g
            .fns
            .iter()
            .position(|f| f.qualified() == "a::Dur::store_fast")
            .expect("store_fast summarized");
        let kinds: Vec<&str> = traces[idx].iter().map(|e| e.kind).collect();
        assert_eq!(kinds, ["journal", "barrier", "mutate"], "{:?}", traces[idx]);
        assert_eq!(traces[idx][0].via, vec!["a::Dur::commit".to_string()]);
    }

    #[test]
    fn o001_catches_mutation_before_an_inlined_commit() {
        let extra = concat!(
            "impl Dur {\n",
            "  fn commit(&self, op: Op) -> u64 {\n",
            "    let lsn = self.w.append(&op);\n",
            "    self.g.wait_durable(lsn);\n",
            "    lsn\n",
            "  }\n",
            "  pub fn store_late(&self, d: Value) {\n",
            "    self.c.insert_doc(d);\n",
            "    self.commit(op(d));\n",
            "  }\n",
            "}\n"
        );
        let src = format!("{WAL_STORE}{extra}");
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_order(&g, &s, &cfg(), None);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "O001");
        assert!(diags[0].message.contains("a::Dur::store_late"));
    }

    #[test]
    fn order_edge_roles_color_configured_targets() {
        let (g, _s) = graph_and_sources(&[("crates/a/src/lib.rs", WAL_STORE)]);
        let roles = order_edge_roles(&g, &cfg());
        assert!(roles.values().any(|&r| r == "journal"), "{roles:?}");
        assert!(roles.values().any(|&r| r == "barrier"), "{roles:?}");
        assert!(roles.values().any(|&r| r == "mutate"), "{roles:?}");
    }

    #[test]
    fn workspace_is_order_clean() {
        // The acceptance gate: zero O0xx findings on the whole
        // workspace with the Materials Project defaults — the durable
        // store is write-ahead, framed, group-committed, and recovery
        // verifies before it applies.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = analyze_order_tree(&root).expect("scan workspace");
        assert!(
            diags.is_empty(),
            "workspace ordering findings:\n{}",
            crate::diagnostics::render(&diags)
        );
    }
}
