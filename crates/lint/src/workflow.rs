//! Pass 2: workflow DAG analysis.
//!
//! Codes:
//! - `W001` (error): dependency cycle, reported with the offending path.
//! - `W002` (error): parent reference to a fw_id that is not in the workflow.
//! - `W003` (error): duplicate fw_id.
//! - `W004` (warning): disconnected firework in a multi-step workflow (no
//!   parents and no children — likely an orphaned step).
//! - `W005` (warning): two fireworks share a binder key, so dedup will
//!   archive one of them as a duplicate of the other.
//! - `W006` (error): fuse inconsistency — a `ParentOutputMatches` condition
//!   on a root firework (there is no parent output to match), or a fuse
//!   filter that does not parse.
//! - `W007` (warning): malformed binder key (missing the
//!   `<structure>|<functional>` shape).
//!
//! The analyzer consumes generic [`WfNode`] descriptions rather than the
//! fireworks crate's types so that `mp-fireworks` can depend on `mp-lint`
//! without a cycle. [`WfNode::from_workflow_json`] understands the
//! serialized `Workflow` document shape for CLI use.

use std::collections::{BTreeMap, BTreeSet};

use mp_docstore::Filter;
use serde_json::Value;

use crate::diagnostics::Diagnostic;

/// One workflow step, reduced to what the analyzer needs.
#[derive(Debug, Clone, Default)]
pub struct WfNode {
    /// Unique id within the workflow.
    pub id: String,
    /// Human-readable name (diagnostics only).
    pub name: String,
    /// Parent ids this step depends on.
    pub parents: Vec<String>,
    /// Dedup identity key, if the step has a binder.
    pub binder_key: Option<String>,
    /// The `ParentOutputMatches` filter, when the fuse has one.
    pub fuse_filter: Option<Value>,
    /// True when the fuse condition needs parent outputs to evaluate.
    pub fuse_requires_parent_output: bool,
}

impl WfNode {
    /// Parse the nodes out of a serialized `Workflow` document
    /// (`{"wf_id": …, "fireworks": [{"fw_id", "name", "parents", "binder",
    /// "fuse"}, …]}`).
    pub fn from_workflow_json(doc: &Value) -> Result<Vec<WfNode>, String> {
        let fws = doc
            .get("fireworks")
            .and_then(Value::as_array)
            .ok_or_else(|| "workflow document has no `fireworks` array".to_string())?;
        let mut nodes = Vec::with_capacity(fws.len());
        for (i, fw) in fws.iter().enumerate() {
            let id = fw
                .get("fw_id")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("fireworks[{i}] has no string `fw_id`"))?;
            let parents = fw
                .get("parents")
                .and_then(Value::as_array)
                .map(|ps| {
                    ps.iter()
                        .filter_map(Value::as_str)
                        .map(str::to_string)
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default();
            let binder_key = fw
                .get("binder")
                .and_then(|b| b.get("key").or(Some(b)))
                .and_then(Value::as_str)
                .map(str::to_string);
            let fuse = fw.get("fuse").cloned().unwrap_or(Value::Null);
            let fuse_type = fuse.get("type").and_then(Value::as_str).unwrap_or("");
            nodes.push(WfNode {
                id: id.to_string(),
                name: fw
                    .get("name")
                    .and_then(Value::as_str)
                    .unwrap_or(id)
                    .to_string(),
                parents,
                binder_key,
                fuse_filter: fuse.get("filter").cloned().filter(|f| !f.is_null()),
                fuse_requires_parent_output: fuse_type == "parent_output_matches",
            });
        }
        Ok(nodes)
    }
}

/// Run every workflow check over the node set.
pub fn analyze_workflow(nodes: &[WfNode]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_duplicate_ids(nodes, &mut out);
    check_parent_refs(nodes, &mut out);
    check_cycles(nodes, &mut out);
    check_disconnected(nodes, &mut out);
    check_binders(nodes, &mut out);
    check_fuses(nodes, &mut out);
    out
}

fn check_duplicate_ids(nodes: &[WfNode], out: &mut Vec<Diagnostic>) {
    let mut seen = BTreeSet::new();
    for n in nodes {
        if !seen.insert(n.id.as_str()) {
            out.push(Diagnostic::error(
                "W003",
                &n.id,
                format!("fw_id `{}` appears more than once in the workflow", n.id),
            ));
        }
    }
}

fn check_parent_refs(nodes: &[WfNode], out: &mut Vec<Diagnostic>) {
    let ids: BTreeSet<&str> = nodes.iter().map(|n| n.id.as_str()).collect();
    for n in nodes {
        for p in &n.parents {
            if !ids.contains(p.as_str()) {
                out.push(
                    Diagnostic::error(
                        "W002",
                        &n.id,
                        format!("`{}` depends on `{p}`, which is not in this workflow", n.id),
                    )
                    .with_suggestion("add the missing firework or drop the dependency"),
                );
            }
        }
    }
}

/// Depth-first search over parent edges; a node found on the current stack
/// closes a cycle, which is reported with the full offending path.
fn check_cycles(nodes: &[WfNode], out: &mut Vec<Diagnostic>) {
    let by_id: BTreeMap<&str, &WfNode> = nodes.iter().map(|n| (n.id.as_str(), n)).collect();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in nodes {
        if done.contains(start.id.as_str()) {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start.id.as_str(), 0)];
        let mut on_stack: BTreeSet<&str> = [start.id.as_str()].into();
        while let Some((id, next_parent)) = stack.last().copied() {
            let parents = by_id.get(id).map(|n| n.parents.as_slice()).unwrap_or(&[]);
            match parents.get(next_parent) {
                None => {
                    done.insert(id);
                    on_stack.remove(id);
                    stack.pop();
                }
                Some(p) => {
                    stack.last_mut().expect("non-empty").1 += 1;
                    let p = p.as_str();
                    if on_stack.contains(p) {
                        let from = stack.iter().position(|(s, _)| *s == p).unwrap_or(0);
                        let mut path: Vec<&str> = stack[from..].iter().map(|(s, _)| *s).collect();
                        path.push(p);
                        out.push(
                            Diagnostic::error(
                                "W001",
                                p,
                                format!("dependency cycle: {}", path.join(" -> ")),
                            )
                            .with_suggestion("break one edge of the cycle"),
                        );
                        return; // one cycle report is enough to block
                    }
                    if !done.contains(p) && by_id.contains_key(p) {
                        on_stack.insert(p);
                        stack.push((p, 0));
                    }
                }
            }
        }
    }
}

fn check_disconnected(nodes: &[WfNode], out: &mut Vec<Diagnostic>) {
    if nodes.len() < 2 {
        return;
    }
    let referenced: BTreeSet<&str> = nodes
        .iter()
        .flat_map(|n| n.parents.iter().map(String::as_str))
        .collect();
    for n in nodes {
        if n.parents.is_empty() && !referenced.contains(n.id.as_str()) {
            out.push(
                Diagnostic::warning(
                    "W004",
                    &n.id,
                    format!(
                        "`{}` has no parents and no children in a {}-step workflow",
                        n.id,
                        nodes.len()
                    ),
                )
                .with_suggestion("orphaned step — connect it or submit it as its own workflow"),
            );
        }
    }
}

fn check_binders(nodes: &[WfNode], out: &mut Vec<Diagnostic>) {
    let mut first_owner: BTreeMap<&str, &str> = BTreeMap::new();
    for n in nodes {
        let Some(key) = n.binder_key.as_deref() else {
            continue;
        };
        match first_owner.get(key) {
            Some(owner) => out.push(
                Diagnostic::warning(
                    "W005",
                    &n.id,
                    format!("`{}` and `{owner}` share binder key `{key}`", n.id),
                )
                .with_suggestion("dedup will archive one of them as a duplicate of the other"),
            ),
            None => {
                first_owner.insert(key, n.id.as_str());
            }
        }
        let well_formed = {
            let mut parts = key.splitn(2, '|');
            let structure = parts.next().unwrap_or("");
            let functional = parts.next().unwrap_or("");
            !structure.is_empty() && !functional.is_empty()
        };
        if !well_formed {
            out.push(
                Diagnostic::warning(
                    "W007",
                    &n.id,
                    format!("binder key `{key}` is not of the form `<structure>|<functional>`"),
                )
                .with_suggestion("build binders with Binder::new(structure_id, functional)"),
            );
        }
    }
}

fn check_fuses(nodes: &[WfNode], out: &mut Vec<Diagnostic>) {
    for n in nodes {
        if n.fuse_requires_parent_output && n.parents.is_empty() {
            out.push(
                Diagnostic::error(
                    "W006",
                    &n.id,
                    format!(
                        "`{}` gates on parent output (`parent_output_matches`) but has no parents",
                        n.id
                    ),
                )
                .with_suggestion("root fireworks must use `parents_completed` or `user_approved`"),
            );
        }
        if let Some(filter) = &n.fuse_filter {
            if let Err(e) = Filter::parse(filter) {
                out.push(Diagnostic::error(
                    "W006",
                    &n.id,
                    format!("fuse filter on `{}` does not parse: {e}", n.id),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{has_errors, Severity};
    use serde_json::json;

    fn node(id: &str, parents: &[&str]) -> WfNode {
        WfNode {
            id: id.to_string(),
            name: id.to_string(),
            parents: parents.iter().map(|p| p.to_string()).collect(),
            ..WfNode::default()
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn w001_cycle_reports_offending_path() {
        let diags = analyze_workflow(&[node("a", &["c"]), node("b", &["a"]), node("c", &["b"])]);
        let w001 = diags
            .iter()
            .find(|d| d.code == "W001")
            .expect("cycle detected");
        assert_eq!(w001.severity, Severity::Error);
        for id in ["a", "b", "c"] {
            assert!(
                w001.message.contains(id),
                "path names every member: {w001:?}"
            );
        }
    }

    #[test]
    fn w002_unknown_parent() {
        let diags = analyze_workflow(&[node("a", &["ghost"])]);
        assert_eq!(codes(&diags), vec!["W002"]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn w003_duplicate_fw_id() {
        let diags = analyze_workflow(&[node("a", &[]), node("a", &[])]);
        assert!(codes(&diags).contains(&"W003"), "{diags:?}");
    }

    #[test]
    fn w004_orphaned_firework() {
        let diags = analyze_workflow(&[node("a", &[]), node("b", &["a"]), node("loner", &[])]);
        let w004 = diags
            .iter()
            .find(|d| d.code == "W004")
            .expect("orphan flagged");
        assert_eq!(w004.severity, Severity::Warning);
        assert_eq!(w004.path, "loner");
        // A single-step workflow is not an orphan.
        assert!(analyze_workflow(&[node("solo", &[])]).is_empty());
    }

    #[test]
    fn w005_duplicate_binder_key() {
        let mut a = node("a", &[]);
        a.binder_key = Some("fp|GGA".to_string());
        let mut b = node("b", &["a"]);
        b.binder_key = Some("fp|GGA".to_string());
        let diags = analyze_workflow(&[a, b]);
        assert_eq!(codes(&diags), vec!["W005"]);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn w006_root_with_parent_output_fuse() {
        let mut a = node("a", &[]);
        a.fuse_requires_parent_output = true;
        a.fuse_filter = Some(json!({"energy": {"$lt": 0.0}}));
        let diags = analyze_workflow(&[a]);
        assert_eq!(codes(&diags), vec!["W006"]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn w006_unparseable_fuse_filter() {
        let mut b = node("b", &["a"]);
        b.fuse_requires_parent_output = true;
        b.fuse_filter = Some(json!({"energy": {"$bogus": 1}}));
        let diags = analyze_workflow(&[node("a", &[]), b]);
        assert_eq!(codes(&diags), vec!["W006"]);
    }

    #[test]
    fn w007_malformed_binder_key() {
        let mut a = node("a", &[]);
        a.binder_key = Some("no-separator".to_string());
        let diags = analyze_workflow(&[a]);
        assert_eq!(codes(&diags), vec!["W007"]);
    }

    #[test]
    fn clean_dag_has_no_diagnostics() {
        let mut b = node("b", &["a"]);
        b.binder_key = Some("fp|GGA".to_string());
        b.fuse_requires_parent_output = true;
        b.fuse_filter = Some(json!({"converged": true}));
        let diags = analyze_workflow(&[node("a", &[]), b, node("c", &["b"])]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn parses_serialized_workflow_documents() {
        let doc = json!({
            "wf_id": "wf-1",
            "fireworks": [
                {"fw_id": "relax", "name": "relax", "parents": [],
                 "binder": {"key": "fp|GGA"},
                 "fuse": {"type": "parents_completed", "overrides": null}},
                {"fw_id": "static", "name": "static", "parents": ["relax"],
                 "binder": null,
                 "fuse": {"type": "parent_output_matches",
                          "filter": {"converged": true}, "overrides": null}},
            ]
        });
        let nodes = WfNode::from_workflow_json(&doc).expect("parses");
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].binder_key.as_deref(), Some("fp|GGA"));
        assert!(nodes[1].fuse_requires_parent_output);
        assert!(nodes[1].fuse_filter.is_some());
        assert!(analyze_workflow(&nodes).is_empty());
    }
}
