//! Pass 7: interprocedural hot-path cost analysis (`H0xx`).
//!
//! The read path processes *documents*, and at 100k documents any
//! per-document allocation multiplies by the collection size. This pass
//! finds those multiplications statically. It reuses the mp-flow
//! machinery — per-function summaries ([`crate::summary`]) and the
//! workspace call graph ([`crate::callgraph`]) — and adds a *hotness*
//! model on top:
//!
//! * **per-document roots** run once per document by contract
//!   (`CompiledFilter::matches`, `CompiledProjection::project_one`,
//!   `CompiledFindOptions::cmp_docs`): their whole body is hot.
//! * **driver roots** own the per-document loop
//!   (`filter_matches`, `filter_project_matches`, `project_matches`,
//!   the aggregation `run_stage`, the MapReduce engines): only their
//!   *loop regions* —
//!   lines inside `for`/`while` bodies or iterator-adapter closures —
//!   are hot.
//! * hotness propagates: any function called from a hot region is
//!   entirely hot, transitively, and every diagnostic prints the hot
//!   call chain from the root that made it hot.
//! * **cold functions** stop propagation: the uncompiled reference
//!   implementations (`Filter::matches`, the naive
//!   `FindOptions::project_doc`/`compare`/`apply_order`) are spec
//!   oracles kept for property tests, never on the optimized path.
//!
//! Codes (all `Error` severity — CI gates the workspace at zero):
//! - `H001`: per-document deep copy (`.clone()` / `.to_vec()` /
//!   `.to_owned()`) of document contents in a hot region.
//! - `H002`: fresh unsized container (`Vec::new()` / `Map::new()` /
//!   `BTreeMap::new()` / `HashMap::new()` / `vec![...]`) built per
//!   document; `with_capacity` is the sanctioned pre-sized form and is
//!   deliberately *not* matched.
//! - `H003`: string building (`format!` / `String::new()` /
//!   `.push_str` / `.to_string`) per document.
//! - `H004`: re-parsing or re-compiling per document what should be
//!   compiled once per query (`Filter::parse`, `.compile()`,
//!   `compile_path`, and the string-splitting `get_path`/`set_path`/
//!   `get_path_multi`; the pre-split `*_segs` twins are the fix and are
//!   not matched).
//! - `H005`: lock acquisition (`.lock()`/`.read()`/`.write()`) in a hot
//!   region — a per-document lock serializes the scatter.
//! - `H006`: an `mp-lint: allow(H...)` with no justification.
//! - `H007`: config drift — the [`HotConfig`] names a function the
//!   workspace no longer defines (mirrors `S002`).
//!
//! Suppression mirrors the flow pass: `mp-lint: allow(H001) — <justification>`
//! on the line, the line directly above, or the function's signature
//! line (or any line of the comment block directly above the
//! signature, covering the whole body). The justification after the
//! closing paren is mandatory. An allowed line also stops hotness
//! propagation through its call sites: the annotation asserts the line
//! is not per-document, so its callees are not dragged hot by it.
//!
//! Known granularity limit, by design: hotness of a call site is judged
//! by its *line*. A once-per-query call placed on the same line as an
//! iterator adapter (e.g. `pool.scatter(chunks, |c| c.iter().map(...))`
//! written as one line) is treated as hot; hoist the closure body onto
//! its own lines instead of suppressing.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

use crate::callgraph::{scan_tree, CallGraph};
use crate::concurrency::match_positions;
use crate::diagnostics::Diagnostic;
use crate::flow::FnRef;
use crate::summary::mask_source;

/// Assembled with `concat!` so this file never matches its own pattern
/// literals (the other source passes scan this file too).
const ALLOW_MARK: &str = concat!("mp-", "lint: allow(");

/// One hot-path anti-pattern family.
struct HotPattern {
    code: &'static str,
    /// Substring patterns matched against *masked* source lines.
    pats: &'static [&'static str],
    what: &'static str,
    advice: &'static str,
}

const PATTERNS: &[HotPattern] = &[
    HotPattern {
        code: "H001",
        pats: &[
            concat!(".clo", "ne()"),
            concat!(".to_", "vec("),
            concat!(".to_", "owned("),
        ],
        what: "per-document deep copy",
        advice: "keep Arc handles / borrow the document; materialize owned data once per \
                 query, or annotate the sanctioned copy with \
                 `mp-lint: allow(H001) — <justification>`",
    },
    HotPattern {
        code: "H002",
        pats: &[
            concat!("Vec::", "new()"),
            concat!("Map::", "new()"),
            concat!("BTreeMap::", "new()"),
            concat!("HashMap::", "new()"),
            concat!("vec!", "["),
        ],
        what: "fresh container built per document",
        advice: "hoist a reusable buffer out of the loop or pre-size with `with_capacity`; \
                 if one output row per group is inherent, annotate \
                 `mp-lint: allow(H002) — <justification>`",
    },
    HotPattern {
        code: "H003",
        pats: &[
            concat!("for", "mat!("),
            concat!("String::", "new()"),
            concat!(".push_", "str("),
            concat!(".to_s", "tring("),
        ],
        what: "string building per document",
        advice: "compare/key on borrowed values instead of building strings per document; \
                 error paths may annotate `mp-lint: allow(H003) — <justification>`",
    },
    HotPattern {
        code: "H004",
        pats: &[
            concat!("Filter::", "parse("),
            concat!("parse_", "pipeline("),
            concat!(".com", "pile("),
            concat!("compile_", "path("),
            concat!("get_", "path("),
            concat!("get_path_", "multi("),
            concat!("set_", "path("),
        ],
        what: "per-document re-parse/re-compile",
        advice: "compile the filter/projection/path once per query and reuse the compiled \
                 form (`CompiledFilter`, `CompiledProjection`, `get_path_segs`/\
                 `set_path_segs` over pre-split segments)",
    },
    HotPattern {
        code: "H005",
        pats: &[
            concat!(".lo", "ck()"),
            concat!(".re", "ad()"),
            concat!(".wri", "te()"),
        ],
        what: "lock acquired in a hot region",
        advice: "take the lock once outside the per-document loop (snapshot under the \
                 lock, process outside it)",
    },
];

/// Same-line constructs whose body runs once per element. A `{` opened
/// after one of these markers starts a loop region.
const LOOP_MARKERS: &[&str] = &[
    "for ",
    "while ",
    concat!("lo", "op {"),
    concat!(".ma", "p("),
    concat!(".fil", "ter("),
    concat!(".filter_", "map("),
    concat!(".flat_", "map("),
    concat!(".for_", "each("),
    concat!(".ret", "ain("),
    concat!(".an", "y("),
    concat!(".al", "l("),
    concat!(".fo", "ld("),
    concat!(".posi", "tion("),
    concat!(".fin", "d("),
    concat!(".find_", "map("),
    concat!(".sort_", "by("),
    concat!(".sort_by_", "key("),
    concat!(".sort_unstable_", "by("),
    concat!(".binary_search_", "by("),
    concat!(".max_", "by("),
    concat!(".min_", "by("),
];

/// Configuration for the hot-path pass: which functions seed hotness
/// and which are exempt spec oracles.
#[derive(Debug, Clone)]
pub struct HotConfig {
    /// Functions owning a per-document loop: only their loop regions
    /// are hot, and only calls made from a loop region propagate.
    pub driver_roots: Vec<FnRef>,
    /// Functions that run once per document by contract: their whole
    /// body is hot.
    pub per_doc_roots: Vec<FnRef>,
    /// Reference/spec implementations hotness never enters (kept as
    /// property-test oracles, not on the optimized path).
    pub cold_fns: Vec<FnRef>,
}

impl HotConfig {
    /// The Materials Project workspace defaults: the morsel/chunked scan
    /// and projection drivers (including the segmented shard union, the
    /// lean in-lock union `filter_into`, the crossover-routed counter,
    /// and the executor's morsel dispatch/claim loops), the aggregation
    /// stage runner, and the MapReduce engines own the loops; the compiled
    /// projection, and compiled sort comparator run per document; the
    /// uncompiled `Filter::matches` and the naive `FindOptions`
    /// reference implementations are cold spec oracles.
    pub fn materials_project_defaults() -> Self {
        let parse = |v: &[&str]| v.iter().map(|s| FnRef::parse(s)).collect();
        HotConfig {
            driver_roots: parse(&[
                "filter_matches",
                "filter_matches_segmented",
                "filter_project_matches",
                "project_matches",
                "Collection::filter_into",
                "Collection::count_exec",
                "CompiledFindOptions::apply_order",
                "run_stage",
                "BuiltinEngine::run",
                "HadoopEngine::run",
                "WorkPool::scatter_morsels",
                "MorselRun::claim",
            ]),
            per_doc_roots: parse(&[
                "CompiledFilter::matches",
                "CompiledProjection::project_one",
                "CompiledFindOptions::cmp_docs",
            ]),
            cold_fns: parse(&[
                "Filter::matches",
                "FindOptions::project_doc",
                "FindOptions::compare",
                "FindOptions::apply_order",
            ]),
        }
    }
}

/// `allow(...)` codes named on a raw line via the mp-lint marker, plus
/// whether a justification follows the closing paren.
fn hot_allows(raw: &str) -> (Vec<String>, bool) {
    let Some(start) = raw.find(ALLOW_MARK) else {
        return (Vec::new(), true);
    };
    let rest = &raw[start + ALLOW_MARK.len()..];
    let Some(end) = rest.find(')') else {
        return (Vec::new(), true);
    };
    let codes = rest[..end]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    let justification = rest[end + 1..]
        .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '-' | ':' | '.' | ','));
    (codes, justification.chars().count() >= 8)
}

/// The fn-level suppression line for a signature on 1-based `fn_line`:
/// the signature line itself, or any line of the contiguous
/// comment/attribute block directly above it (the hot allow may share
/// that block with doc text and other passes' allow comments).
fn fn_allow_line(raw_lines: &[String], fn_line: usize) -> &str {
    let sig = raw_lines
        .get(fn_line.wrapping_sub(1))
        .map(String::as_str)
        .unwrap_or("");
    if sig.contains(ALLOW_MARK) {
        return sig;
    }
    let mut idx = fn_line.wrapping_sub(1);
    while idx >= 1 {
        let above = raw_lines.get(idx - 1).map(String::as_str).unwrap_or("");
        let lead = above.trim_start();
        if !lead.starts_with("//") && !lead.starts_with("#[") {
            break;
        }
        if above.contains(ALLOW_MARK) {
            return above;
        }
        idx -= 1;
    }
    sig
}

/// Per-file scan artifacts: raw lines (for allow comments) and masked
/// lines (for structural/pattern scanning).
struct FileArt {
    raw: Vec<String>,
    masked: Vec<String>,
}

/// `(body-open line, body-open column, end line)` of the function whose
/// signature starts at 1-based `fn_line`, by brace matching over the
/// masked text. `None` when no body opens (declaration only).
fn fn_extent(masked: &[String], fn_line: usize) -> Option<(usize, usize, usize)> {
    let mut open: Option<(usize, usize)> = None;
    let mut depth = 0i64;
    for (idx, line) in masked.iter().enumerate().skip(fn_line.saturating_sub(1)) {
        for (col, c) in line.char_indices() {
            match c {
                '{' => {
                    depth += 1;
                    if open.is_none() {
                        open = Some((idx + 1, col));
                    }
                }
                '}' if open.is_some() => {
                    depth -= 1;
                    if depth == 0 {
                        let (ol, oc) = open.unwrap_or((idx + 1, col));
                        return Some((ol, oc, idx + 1));
                    }
                }
                _ => {}
            }
        }
    }
    open.map(|(ol, oc)| (ol, oc, masked.len()))
}

/// Does a loop marker at `pos` leave its region unopened at end of
/// line? A `for`/`while` header may break before its `{`; an iterator
/// adapter spills only while its parenthesis is still open — a fully
/// parenthesized single-line closure (`.map(|d| f(d))`) is complete
/// on its line and must not turn the next unrelated `{` (a match arm,
/// an `if` body) into a loop region.
fn marker_spills(seg: &str, pos: usize, marker: &str) -> bool {
    let after = seg.get(pos..).unwrap_or("");
    if after.contains('{') {
        return false;
    }
    if !marker.starts_with('.') {
        return true;
    }
    let mut depth = 0i64;
    for c in after.chars() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            _ => {}
        }
    }
    true
}

/// 1-based lines of the body that sit inside a loop region: inside a
/// block opened after a loop marker, or carrying a marker themselves
/// (single-line adapter closures). Shared with the ordering pass
/// ([`crate::order`]), whose `O004` charges fsyncs inside these lines.
pub(crate) fn loop_lines(
    masked: &[String],
    open_line: usize,
    open_col: usize,
    end: usize,
) -> BTreeSet<usize> {
    let mut set = BTreeSet::new();
    let mut stack: Vec<bool> = Vec::new();
    let mut pending = false;
    for lineno in open_line..=end {
        let full = masked.get(lineno - 1).map(String::as_str).unwrap_or("");
        let seg = if lineno == open_line {
            full.get(open_col..).unwrap_or("")
        } else {
            full
        };
        let marks: Vec<(usize, &str)> = LOOP_MARKERS
            .iter()
            .flat_map(|m| match_positions(seg, m).into_iter().map(move |p| (p, *m)))
            .collect();
        if stack.iter().any(|&b| b) || !marks.is_empty() {
            set.insert(lineno);
        }
        for (i, c) in seg.char_indices() {
            match c {
                '{' => {
                    let hot = pending || marks.iter().any(|&(p, _)| p < i);
                    pending = false;
                    stack.push(hot);
                }
                '}' => {
                    stack.pop();
                }
                _ => {}
            }
        }
        for &(p, m) in &marks {
            if marker_spills(seg, p, m) {
                pending = true;
            }
        }
    }
    set
}

/// Resolve a ref list against the graph; every ref with zero matches is
/// one `H007` (config drift would silently disable the pass).
fn resolve(
    graph: &CallGraph,
    refs: &[FnRef],
    kind: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<bool> {
    let mut mask = vec![false; graph.fns.len()];
    for r in refs {
        let mut hit = false;
        for (i, f) in graph.fns.iter().enumerate() {
            if r.is_match(f) {
                mask[i] = true;
                hit = true;
            }
        }
        if !hit {
            diags.push(
                Diagnostic::error(
                    "H007",
                    r.display(),
                    format!(
                        "hotpath config names {kind} `{}` but the workspace defines no such \
                         function — the pass would silently skip it",
                        r.display()
                    ),
                )
                .with_suggestion(
                    "update HotConfig (or materials_project_defaults) to match the renamed \
                     or removed function",
                ),
            );
        }
    }
    mask
}

fn chain_text(graph: &CallGraph, parent: &BTreeMap<usize, usize>, mut node: usize) -> String {
    let mut rev = vec![node];
    while let Some(&p) = parent.get(&node) {
        node = p;
        rev.push(node);
    }
    rev.reverse();
    rev.iter()
        .map(|&i| graph.fns[i].qualified())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// Method names shared with the std containers. A bare `m.insert(k, v)`
/// or `v.len()` resolves by name+arity to any same-named workspace
/// method (`Index::insert`, `Collection::len`), so following those
/// edges would manufacture hot chains out of plain `BTreeMap`/`Vec`
/// calls. Hotness never propagates *through* a method with one of
/// these names; the body is still scanned when hot by other means
/// (e.g. named as a root).
const STD_SHADOWED: &[&str] = &[
    "len",
    "get",
    "insert",
    "push",
    "remove",
    "extend",
    "clear",
    "is_empty",
    "contains",
    "contains_key",
    "entry",
    "iter",
];

/// Scan the given 1-based `lines` of function `i`'s body for the H0xx
/// anti-patterns, suppressing allowed codes. `clip` is the body-open
/// position: text before it on that line (the signature) is excluded,
/// so a function whose own name matches a pattern (`compile_path`)
/// never flags its signature.
#[allow(clippy::too_many_arguments)]
fn scan_lines(
    graph: &CallGraph,
    i: usize,
    art: &FileArt,
    lines: &BTreeSet<usize>,
    clip: Option<(usize, usize)>,
    chain: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let f = &graph.fns[i];
    let fn_level = fn_allow_line(&art.raw, f.line);
    for &lineno in lines {
        let masked_full = art.masked.get(lineno - 1).map(String::as_str).unwrap_or("");
        let masked = match clip {
            Some((l, c)) if l == lineno => masked_full.get(c..).unwrap_or(""),
            _ => masked_full,
        };
        let raw = art.raw.get(lineno - 1).map(String::as_str).unwrap_or("");
        let prev = if lineno >= 2 {
            art.raw.get(lineno - 2).map(String::as_str).unwrap_or("")
        } else {
            ""
        };
        let mut allowed = Vec::new();
        for src in [raw, prev, fn_level] {
            allowed.extend(hot_allows(src).0);
        }
        for p in PATTERNS {
            if allowed.iter().any(|a| a == p.code) {
                continue;
            }
            if p.pats
                .iter()
                .any(|pat| !match_positions(masked, pat).is_empty())
            {
                diags.push(
                    Diagnostic::error(
                        p.code,
                        format!("{}:{lineno}", f.file),
                        format!(
                            "{} in hot function `{}`; this runs once per document at \
                             collection scale; hot call chain: {chain}",
                            p.what,
                            f.qualified()
                        ),
                    )
                    .with_suggestion(p.advice),
                );
            }
        }
    }
}

/// Run the hot-path pass over a prebuilt call graph. `sources` maps the
/// summary-relative file path of every scanned file to its raw text.
pub fn analyze_hotpath(
    graph: &CallGraph,
    sources: &BTreeMap<String, String>,
    config: &HotConfig,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let arts: BTreeMap<&str, FileArt> = sources
        .iter()
        .map(|(p, s)| {
            (
                p.as_str(),
                FileArt {
                    raw: s.lines().map(str::to_string).collect(),
                    masked: mask_source(s).lines().map(str::to_string).collect(),
                },
            )
        })
        .collect();

    // H006: a justification-free H-allow is wrong even in cold code.
    for (path, art) in &arts {
        for (idx, raw) in art.raw.iter().enumerate() {
            if !raw.contains(ALLOW_MARK) {
                continue;
            }
            let (codes, justified) = hot_allows(raw);
            if !justified && codes.iter().any(|c| c.starts_with('H')) {
                diags.push(
                    Diagnostic::error(
                        "H006",
                        format!("{path}:{}", idx + 1),
                        "`mp-lint: allow(H...)` has no justification".to_string(),
                    )
                    .with_suggestion(
                        "append a justification after the closing paren, e.g. \
                         `mp-lint: allow(H002) — one output row per group is inherent`",
                    ),
                );
            }
        }
    }

    let drivers = resolve(graph, &config.driver_roots, "driver root", &mut diags);
    let per_doc = resolve(
        graph,
        &config.per_doc_roots,
        "per-document root",
        &mut diags,
    );
    let cold = resolve(graph, &config.cold_fns, "cold function", &mut diags);

    // Body extents and loop regions, computed lazily per function.
    let extent_of = |i: usize| -> Option<(usize, usize, usize)> {
        let f = &graph.fns[i];
        arts.get(f.file.as_str())
            .and_then(|a| fn_extent(&a.masked, f.line))
    };
    // A call site on a line carrying an H-code allow (inline or on the
    // line directly above, matching the suppression contexts) asserts
    // the line is not per-document; it neither fires nor propagates
    // hotness.
    let allowed_line = |file: &str, line: usize| -> bool {
        let Some(art) = arts.get(file) else {
            return false;
        };
        [line, line.wrapping_sub(1)].iter().any(|&l| {
            art.raw
                .get(l.wrapping_sub(1))
                .map(|raw| hot_allows(raw).0.iter().any(|c| c.starts_with('H')))
                .unwrap_or(false)
        })
    };
    let shadowed = |v: usize| -> bool {
        let f = &graph.fns[v];
        f.impl_type.is_some() && STD_SHADOWED.contains(&f.name.as_str())
    };

    // Hotness propagation: per-document roots are fully hot; driver
    // roots seed hotness through call sites inside their loop regions.
    let n = graph.fns.len();
    let mut hot = vec![false; n];
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut q = VecDeque::new();
    for i in 0..n {
        if per_doc[i] && !cold[i] {
            hot[i] = true;
            q.push_back(i);
        }
    }
    let mut driver_loops: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for (i, _) in drivers.iter().enumerate().filter(|(_, d)| **d) {
        let Some((ol, oc, end)) = extent_of(i) else {
            continue;
        };
        let f = &graph.fns[i];
        let loops = arts
            .get(f.file.as_str())
            .map(|a| loop_lines(&a.masked, ol, oc, end))
            .unwrap_or_default();
        for &(v, line) in &graph.out[i] {
            if loops.contains(&line)
                && !hot[v]
                && !cold[v]
                && !shadowed(v)
                && !allowed_line(&f.file, line)
            {
                hot[v] = true;
                parent.insert(v, i);
                q.push_back(v);
            }
        }
        driver_loops.insert(i, loops);
    }
    while let Some(u) = q.pop_front() {
        let file = graph.fns[u].file.clone();
        for &(v, line) in &graph.out[u] {
            if !hot[v] && !cold[v] && !shadowed(v) && !allowed_line(&file, line) {
                hot[v] = true;
                parent.insert(v, u);
                q.push_back(v);
            }
        }
    }

    // Pattern scan: fully hot bodies everywhere, driver roots only in
    // their loop regions.
    for i in 0..n {
        let f = &graph.fns[i];
        let Some(art) = arts.get(f.file.as_str()) else {
            continue;
        };
        if hot[i] {
            let Some((ol, oc, end)) = extent_of(i) else {
                continue;
            };
            let lines: BTreeSet<usize> = (ol..=end).collect();
            let chain = chain_text(graph, &parent, i);
            scan_lines(graph, i, art, &lines, Some((ol, oc)), &chain, &mut diags);
        } else if drivers[i] {
            if let Some(loops) = driver_loops.get(&i) {
                let clip = extent_of(i).map(|(ol, oc, _)| (ol, oc));
                let chain = graph.fns[i].qualified();
                scan_lines(graph, i, art, loops, clip, &chain, &mut diags);
            }
        }
    }
    diags
}

/// Scan the workspace at `root` and run the pass with the Materials
/// Project defaults.
pub fn analyze_hotpath_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let graph = scan_tree(root)?;
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    for f in &graph.fns {
        if !sources.contains_key(&f.file) {
            let text = std::fs::read_to_string(root.join(&f.file))?;
            sources.insert(f.file.clone(), text);
        }
    }
    Ok(analyze_hotpath(
        &graph,
        &sources,
        &HotConfig::materials_project_defaults(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize_source;

    fn graph_and_sources(files: &[(&str, &str)]) -> (CallGraph, BTreeMap<String, String>) {
        let mut fns = Vec::new();
        let mut sources = BTreeMap::new();
        for (path, src) in files {
            fns.extend(summarize_source(path, src));
            sources.insert((*path).to_string(), (*src).to_string());
        }
        let mut deps = BTreeMap::new();
        deps.insert("a".to_string(), BTreeSet::new());
        (CallGraph::build(fns, &deps), sources)
    }

    fn cfg(drivers: &[&str], per_doc: &[&str], cold: &[&str]) -> HotConfig {
        let parse = |v: &[&str]| v.iter().map(|s| FnRef::parse(s)).collect();
        HotConfig {
            driver_roots: parse(drivers),
            per_doc_roots: parse(per_doc),
            cold_fns: parse(cold),
        }
    }

    #[test]
    fn per_doc_root_body_is_fully_hot() {
        let src = concat!(
            "pub struct M;\nimpl M {\n",
            "  pub fn matches(&self, doc: &Value) -> bool {\n",
            "    let copy = doc",
            ".clone",
            "();\n",
            "    copy.is_object()\n",
            "  }\n}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&[], &["M::matches"], &[]));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "H001");
        assert!(
            diags[0].message.contains("a::M::matches"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn driver_root_flags_only_loop_bodies() {
        let src = concat!(
            "pub fn drive(docs: &[Value]) -> Vec<String> {\n",
            "  let once = ",
            "format!",
            "(\"{}\", docs.len());\n",
            "  let mut out = Vec::with_capacity(docs.len());\n",
            "  for d in docs {\n",
            "    out.push(",
            "format!",
            "(\"{:?}\", d));\n",
            "  }\n",
            "  let _ = once;\n",
            "  out\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &[]));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "H003");
        assert!(diags[0].path.ends_with(":5"), "{}", diags[0].path);
    }

    /// The workspace defaults classify the morsel executor's dispatch
    /// and claim loops as hot roots: a per-morsel deep copy inside
    /// `WorkPool::scatter_morsels` is a finding out of the box.
    #[test]
    fn morsel_executor_is_a_default_hot_root() {
        let src = concat!(
            "pub struct WorkPool;\nimpl WorkPool {\n",
            "  pub fn scatter_morsels(&self, items: &[Value]) -> Vec<Value> {\n",
            "    let mut out = Vec::with_capacity(items.len());\n",
            "    for m in items.chunks(4) {\n",
            "      out.push(m[0]",
            ".clone",
            "());\n",
            "    }\n",
            "    out\n",
            "  }\n}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &HotConfig::materials_project_defaults());
        let h001: Vec<_> = diags.iter().filter(|d| d.code == "H001").collect();
        assert_eq!(h001.len(), 1, "{diags:?}");
        assert!(
            h001[0].message.contains("scatter_morsels"),
            "{}",
            h001[0].message
        );
    }

    #[test]
    fn hotness_propagates_with_full_chain() {
        let src = concat!(
            "pub fn drive(docs: &[Value]) {\n",
            "  for d in docs {\n",
            "    step(d);\n",
            "  }\n",
            "}\n",
            "fn step(d: &Value) { leaf(d); }\n",
            "fn leaf(d: &Value) {\n",
            "  let mut v = Vec::",
            "new();\n",
            "  v.push(d);\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &[]));
        let h002: Vec<_> = diags.iter().filter(|d| d.code == "H002").collect();
        assert_eq!(h002.len(), 1, "{diags:?}");
        assert!(
            h002[0].message.contains("a::drive -> a::step -> a::leaf"),
            "{}",
            h002[0].message
        );
    }

    #[test]
    fn calls_outside_loops_do_not_propagate() {
        let src = concat!(
            "pub fn drive(docs: &[Value]) {\n",
            "  setup();\n",
            "  for d in docs {\n",
            "    let _ = d;\n",
            "  }\n",
            "}\n",
            "fn setup() {\n",
            "  let mut v = Vec::",
            "new();\n",
            "  v.push(1);\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cold_fns_break_propagation() {
        let src = concat!(
            "pub fn drive(docs: &[Value]) {\n",
            "  for d in docs {\n",
            "    spec_oracle(d);\n",
            "  }\n",
            "}\n",
            "fn spec_oracle(d: &Value) {\n",
            "  let _ = ",
            "get_path",
            "(d, \"a.b\");\n",
            "}\n",
            "fn get_path(d: &Value, p: &str) -> Option<Value> { None }\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &["spec_oracle"]));
        assert!(diags.is_empty(), "{diags:?}");
        // Without the cold exemption the same graph flags H004.
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &[]));
        assert!(diags.iter().any(|d| d.code == "H004"), "{diags:?}");
    }

    #[test]
    fn h005_lock_in_hot_loop() {
        let src = concat!(
            "pub fn drive(&self, docs: &[Value]) {\n",
            "  for d in docs {\n",
            "    let g = self.state",
            ".lock",
            "();\n",
            "    g.push(d);\n",
            "  }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &[]));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "H005");
    }

    #[test]
    fn justified_allow_suppresses_and_bare_allow_is_h006() {
        let allow_ok = concat!(
            "// mp-",
            "lint: allow(H001) — output rows are owned by contract\n"
        );
        let allow_bad = concat!(" // mp-", "lint: allow(H001)\n");
        let src = format!(
            concat!(
                "pub fn hot(d: &Value) -> Value {{\n",
                "  {}",
                "  let a = d",
                ".clone",
                "();\n",
                "  let b = d",
                ".clone",
                "();{}",
                "  a\n",
                "}}\n"
            ),
            allow_ok, allow_bad
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&[], &["hot"], &[]));
        // Both sites suppressed (one justified, one pending H006), and
        // the bare allow itself is the only finding.
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "H006");
    }

    #[test]
    fn fn_level_allow_covers_body() {
        let src = concat!(
            "// mp-",
            "lint: allow(H003) — diagnostic rendering is inherently string-built\n",
            "pub fn hot(d: &Value) -> String {\n",
            "  ",
            "format!",
            "(\"{d:?}\")\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&[], &["hot"], &[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn config_drift_is_h007() {
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", "pub fn real() {}\n")]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["Gone::missing"], &[], &[]));
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, "H007");
        assert!(diags[0].message.contains("Gone::missing"));
    }

    #[test]
    fn with_capacity_is_not_h002() {
        let src = concat!(
            "pub fn hot(d: &Value) -> Vec<u8> {\n",
            "  let mut out = Vec::with_capacity(4);\n",
            "  out.push(1);\n",
            "  out\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&[], &["hot"], &[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn presplit_seg_twins_are_not_h004() {
        let src = concat!(
            "pub fn hot(d: &Value, segs: &[PathSeg]) {\n",
            "  let _ = get_path_segs(d, segs);\n",
            "}\n",
            "fn get_path_segs(d: &Value, s: &[PathSeg]) -> Option<&Value> { None }\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&[], &["hot"], &[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn single_line_adapter_does_not_open_a_region() {
        // `.filter(...)` closes on its own line; the `{` of the next
        // match arm must not become a phantom loop region.
        let src = concat!(
            "pub fn drive(docs: &[Value]) -> Vec<Value> {\n",
            "  let kept: Vec<Value> = docs.iter()",
            ".filter",
            "(|d| d.is_object()).cloned().collect();\n",
            "  match kept.len() {\n",
            "    0 => {\n",
            "      let v = Vec::",
            "new();\n",
            "      v\n",
            "    }\n",
            "    _ => kept,\n",
            "  }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn allowed_call_line_does_not_propagate() {
        let allow = concat!(
            "// mp-",
            "lint: allow(H004) — compiles each spec once per query, not per document\n"
        );
        let src = format!(
            concat!(
                "pub fn drive(docs: &[Value]) {{\n",
                "  for d in docs {{\n",
                "    {}",
                "    helper(d);\n",
                "  }}\n",
                "}}\n",
                "fn helper(d: &Value) {{\n",
                "  let mut v = Vec::",
                "new();\n",
                "  v.push(d);\n",
                "}}\n"
            ),
            allow
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", &src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn std_shadowed_method_names_do_not_propagate() {
        // `c.len()` resolves by name+arity to `Coll::len`; following
        // that edge would make every `Vec::len()` call a hot chain.
        let src = concat!(
            "pub fn drive(docs: &[Value], c: &Coll) {\n",
            "  for d in docs {\n",
            "    let _ = (d, c.len());\n",
            "  }\n",
            "}\n",
            "pub struct Coll;\n",
            "impl Coll {\n",
            "  pub fn len(&self) -> usize {\n",
            "    let v: Vec<u8> = Vec::",
            "new();\n",
            "    v.len()\n",
            "  }\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&["drive"], &[], &[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn fn_level_allow_found_through_comment_block() {
        // The hot allow may sit above other passes' allow comments in
        // the same block directly over the signature.
        let src = concat!(
            "// mp-",
            "lint: allow(H001) — output documents are owned by contract here\n",
            "// mp-",
            "flow: allow(R001) — unrelated pass, sits between\n",
            "pub fn hot(d: &Value) -> Value {\n",
            "  d",
            ".clone",
            "()\n",
            "}\n"
        );
        let (g, s) = graph_and_sources(&[("crates/a/src/lib.rs", src)]);
        let diags = analyze_hotpath(&g, &s, &cfg(&[], &["hot"], &[]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn workspace_is_hotpath_clean() {
        // The acceptance gate: zero unjustified H0xx findings on the
        // whole workspace with the Materials Project defaults. Every
        // surviving per-document allocation carries a justified
        // H-code allow comment.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = analyze_hotpath_tree(&root).expect("scan workspace");
        assert!(
            diags.is_empty(),
            "workspace hotpath findings:\n{}",
            crate::diagnostics::render(&diags)
        );
    }
}
