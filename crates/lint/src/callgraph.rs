//! Workspace call graph built from per-function summaries.
//!
//! Nodes are the functions [`crate::summary::summarize_source`] found;
//! edges come from resolving each [`CallSite`](crate::summary::CallSite)
//! against the workspace's definitions. Resolution is deliberately
//! conservative-but-filtered:
//!
//! * `Type::method` path calls resolve to the summary with that exact
//!   `(impl_type, name)` pair; `Self::method` resolves via the caller's
//!   own impl type.
//! * `recv.method(...)` calls resolve by method name workspace-wide,
//!   filtered by argument count against each candidate's non-`self`
//!   parameter count (so the zero-arg `Iterator::count()` never links
//!   to `Collection::count(&Filter)`), then by crate dependency: an
//!   edge may only leave crate A for crate B when A's `Cargo.toml`
//!   declares a dependency on B.
//! * Plain calls prefer a definition in the same file, then the same
//!   crate, then any depended-upon crate.
//!
//! The same graph feeds both flow passes and `mp-lint callgraph --dot`.

use crate::summary::{summarize_source, Callee, FnSummary};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// One resolved edge: caller index → callee index, at a source line.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Index into [`CallGraph::fns`].
    pub from: usize,
    /// Index into [`CallGraph::fns`].
    pub to: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: usize,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All non-test function summaries, in scan order.
    pub fns: Vec<FnSummary>,
    /// Resolved call edges.
    pub edges: Vec<Edge>,
    /// Adjacency: caller index → (callee index, call line).
    pub out: Vec<Vec<(usize, usize)>>,
    /// Reverse adjacency: callee index → (caller index, call line).
    pub rin: Vec<Vec<(usize, usize)>>,
}

impl CallGraph {
    /// Build the graph from summaries plus the per-crate dependency
    /// relation (`deps[crate]` = crates it may call into; every crate
    /// implicitly depends on itself).
    pub fn build(fns: Vec<FnSummary>, deps: &BTreeMap<String, BTreeSet<String>>) -> Self {
        // Lookup tables.
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if let Some(t) = &f.impl_type {
                by_type_method
                    .entry((t.as_str(), f.name.as_str()))
                    .or_default()
                    .push(i);
                by_method.entry(f.name.as_str()).or_default().push(i);
            } else {
                by_free.entry(f.name.as_str()).or_default().push(i);
            }
        }

        let may_call = |from: &FnSummary, to: &FnSummary| -> bool {
            from.crate_name == to.crate_name
                || deps
                    .get(&from.crate_name)
                    .is_some_and(|d| d.contains(&to.crate_name))
        };
        let arity_ok = |args: Option<usize>, callee: &FnSummary| -> bool {
            match (args, callee.params) {
                (Some(a), Some(p)) => a == p,
                _ => true,
            }
        };

        let mut edges = Vec::new();
        for (i, f) in fns.iter().enumerate() {
            for call in &f.calls {
                let mut targets: Vec<usize> = Vec::new();
                match &call.callee {
                    Callee::Path(ty, name) => {
                        let ty = if ty == "Self" {
                            match &f.impl_type {
                                Some(t) => t.as_str(),
                                None => continue,
                            }
                        } else {
                            ty.as_str()
                        };
                        if let Some(c) = by_type_method.get(&(ty, name.as_str())) {
                            targets.extend(c.iter().copied());
                        } else if let Some(c) = by_free.get(name.as_str()) {
                            // `module::func(...)` — the "type" was a module.
                            targets.extend(c.iter().copied());
                        }
                    }
                    Callee::Method(name) => {
                        if let Some(c) = by_method.get(name.as_str()) {
                            targets.extend(c.iter().copied());
                        }
                    }
                    Callee::Plain(name) => {
                        if let Some(c) = by_free.get(name.as_str()) {
                            // Prefer same-file, then same-crate definitions.
                            let same_file: Vec<usize> = c
                                .iter()
                                .copied()
                                .filter(|&j| fns[j].file == f.file)
                                .collect();
                            let same_crate: Vec<usize> = c
                                .iter()
                                .copied()
                                .filter(|&j| fns[j].crate_name == f.crate_name)
                                .collect();
                            if !same_file.is_empty() {
                                targets = same_file;
                            } else if !same_crate.is_empty() {
                                targets = same_crate;
                            } else {
                                targets.extend(c.iter().copied());
                            }
                        }
                    }
                }
                targets.retain(|&j| {
                    i != j
                        && may_call(f, &fns[j])
                        && (!matches!(call.callee, Callee::Method(_))
                            || arity_ok(call.args, &fns[j]))
                });
                // Same-crate preference for method calls: when a method
                // name + arity matches both a local type and one in a
                // dependency, the local definition shadows it (e.g.
                // `self.qe.count(..)` is `QueryEngine::count`, not
                // `ShardedCluster::count`). Cross-crate candidates stay
                // over-approximate when no local one matches.
                if matches!(call.callee, Callee::Method(_))
                    && targets.iter().any(|&j| fns[j].crate_name == f.crate_name)
                {
                    targets.retain(|&j| fns[j].crate_name == f.crate_name);
                }
                for j in targets {
                    edges.push(Edge {
                        from: i,
                        to: j,
                        line: call.line,
                    });
                }
            }
        }
        edges.sort_by_key(|e| (e.from, e.to, e.line));
        edges.dedup_by_key(|e| (e.from, e.to));

        let mut out = vec![Vec::new(); fns.len()];
        let mut rin = vec![Vec::new(); fns.len()];
        for e in &edges {
            out[e.from].push((e.to, e.line));
            rin[e.to].push((e.from, e.line));
        }
        CallGraph {
            fns,
            edges,
            out,
            rin,
        }
    }

    /// Index of the summary with this crate/type/name, if unique-ish
    /// (first match in scan order).
    pub fn find(&self, type_name: Option<&str>, name: &str) -> Option<usize> {
        self.fns
            .iter()
            .position(|f| f.name == name && f.impl_type.as_deref() == type_name)
    }

    /// GraphViz DOT rendering. `roles` maps function index → a fill
    /// color key: the flow roles `source` / `sanitizer` / `sink` /
    /// `panics`, or the effect roles `mutates` / `journals` / `bumps` /
    /// `io` (see [`crate::effects::effect_roles`]). `edge_roles` maps
    /// `(from, to)` → an ordering role (`journal` / `barrier` /
    /// `mutate` / `frame` / `verify` / `apply`, see
    /// [`crate::order::order_edge_roles`]); those edges render colored
    /// and widened so the write-ahead seams stand out. Pass an empty
    /// map for plain black edges.
    pub fn to_dot(
        &self,
        roles: &BTreeMap<usize, &str>,
        edge_roles: &BTreeMap<(usize, usize), &'static str>,
    ) -> String {
        let mut s = String::from("digraph mpflow {\n  rankdir=LR;\n  node [shape=box, fontsize=10, style=filled, fillcolor=white];\n");
        for (i, f) in self.fns.iter().enumerate() {
            // Keep the DOT readable: only nodes that participate in an
            // edge or carry a role.
            let connected = !self.out[i].is_empty() || !self.rin[i].is_empty();
            if !connected && !roles.contains_key(&i) {
                continue;
            }
            let color = match roles.get(&i).copied() {
                Some("source") | Some("bumps") => "lightskyblue",
                Some("sanitizer") | Some("journals") => "palegreen",
                Some("sink") | Some("mutates") => "gold",
                Some("panics") | Some("io") => "lightcoral",
                _ => "white",
            };
            let locks = if f.locks.is_empty() {
                String::new()
            } else {
                format!("\\n[{} lock site(s)]", f.locks.len())
            };
            s.push_str(&format!(
                "  n{} [label=\"{}{}\", fillcolor={}];\n",
                i,
                f.qualified().replace('"', "'"),
                locks,
                color
            ));
        }
        for e in &self.edges {
            match edge_roles.get(&(e.from, e.to)).copied() {
                Some(role) => {
                    let color = match role {
                        "journal" => "forestgreen",
                        "barrier" => "mediumpurple",
                        "mutate" => "goldenrod",
                        "frame" | "verify" => "steelblue",
                        "apply" => "darkorange",
                        _ => "black",
                    };
                    s.push_str(&format!(
                        "  n{} -> n{} [color={}, penwidth=2, label=\"{}\", fontsize=8, fontcolor={}];\n",
                        e.from, e.to, color, role, color
                    ));
                }
                None => s.push_str(&format!("  n{} -> n{};\n", e.from, e.to)),
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Directories never scanned (vendored shims, build output, VCS, test
/// trees) and crates whose panics are deliberate debug-build checks.
fn skip_dir(name: &str) -> bool {
    matches!(
        name,
        "target" | "shims" | ".git" | "tests" | "examples" | "benches" | "fixtures"
    )
}

/// Crates excluded from the flow scan: `sync`'s rank-violation panics
/// are its contract (debug-build deadlock detection), and `bench` is a
/// harness, not servable surface.
fn skip_crate(name: &str) -> bool {
    matches!(name, "sync" | "bench")
}

/// Walk the workspace at `root`, summarize every non-test `.rs` file,
/// parse each crate's `Cargo.toml` for its in-workspace dependencies,
/// and build the call graph.
pub fn scan_tree(root: &Path) -> std::io::Result<CallGraph> {
    let mut fns = Vec::new();
    let mut deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();

    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        // Sort the directory walk so summary order — and with it node
        // indexes, edge order, and diagnostic order — is deterministic
        // across filesystems.
        let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
            .collect::<std::io::Result<Vec<_>>>()?
            .into_iter()
            .collect();
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let name = entry.file_name().to_string_lossy().to_string();
            if !entry.path().is_dir() || skip_crate(&name) {
                continue;
            }
            let dep_set = deps.entry(name.clone()).or_default();
            if let Ok(manifest) = std::fs::read_to_string(entry.path().join("Cargo.toml")) {
                for line in manifest.lines() {
                    let t = line.trim();
                    // `mp-docstore = { path = "../docstore" }` — workspace
                    // deps are all `mp-<dir>`.
                    if let Some(rest) = t.strip_prefix("mp-") {
                        if let Some(dep) = rest.split(['=', ' ', '.']).next() {
                            if !dep.is_empty() {
                                dep_set.insert(dep.to_string());
                            }
                        }
                    }
                }
            }
            collect_rs(&entry.path().join("src"), root, &mut fns)?;
        }
    }
    Ok(CallGraph::build(fns, &deps))
}

fn collect_rs(dir: &Path, root: &Path, fns: &mut Vec<FnSummary>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<std::io::Result<Vec<_>>>()?
        .into_iter()
        .collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if !skip_dir(&name) {
                collect_rs(&path, root, fns)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&path)?;
            fns.extend(summarize_source(&rel, &src));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> CallGraph {
        let mut fns = Vec::new();
        for (path, src) in files {
            fns.extend(summarize_source(path, src));
        }
        let mut dep_map = BTreeMap::new();
        for (k, vs) in deps {
            dep_map.insert(
                (*k).to_string(),
                vs.iter().map(|v| (*v).to_string()).collect(),
            );
        }
        CallGraph::build(fns, &dep_map)
    }

    #[test]
    fn path_calls_resolve_to_type() {
        let g = graph_of(
            &[(
                "crates/a/src/lib.rs",
                "pub struct T;\nimpl T {\n  pub fn go(&self) { T::helper(); }\n  fn helper() {}\n}\n",
            )],
            &[("a", &[])],
        );
        assert_eq!(g.edges.len(), 1, "{:?}", g.edges);
        assert_eq!(g.fns[g.edges[0].to].name, "helper");
    }

    #[test]
    fn self_calls_resolve_via_impl_type() {
        let g = graph_of(
            &[(
                "crates/a/src/lib.rs",
                "pub struct T;\nimpl T {\n  pub fn go(&self) { Self::helper(); }\n  fn helper() {}\n}\n",
            )],
            &[("a", &[])],
        );
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn method_calls_filter_by_arity() {
        let g = graph_of(
            &[
                (
                    "crates/a/src/lib.rs",
                    "pub fn go(c: &C) { let n = xs.iter().count(); c.count(f); }\n",
                ),
                (
                    "crates/b/src/lib.rs",
                    "pub struct C;\nimpl C {\n  pub fn count(&self, f: &F) -> usize { 0 }\n}\n",
                ),
            ],
            &[("a", &["b"]), ("b", &[])],
        );
        // Only the 1-arg c.count(f) resolves; .count() (0 args) is filtered.
        assert_eq!(g.edges.len(), 1, "{:?}", g.edges);
    }

    #[test]
    fn dependency_filter_blocks_unrelated_crates() {
        let g = graph_of(
            &[
                ("crates/a/src/lib.rs", "pub fn go(r: &R) { r.run(x); }\n"),
                (
                    "crates/b/src/lib.rs",
                    "pub struct R;\nimpl R {\n  pub fn run(&self, x: u8) {}\n}\n",
                ),
            ],
            &[("a", &[]), ("b", &[])],
        );
        assert!(g.edges.is_empty(), "no dep a->b declared: {:?}", g.edges);
    }

    #[test]
    fn plain_calls_prefer_same_file() {
        let g = graph_of(
            &[
                (
                    "crates/a/src/x.rs",
                    "pub fn go() { helper(); }\nfn helper() {}\n",
                ),
                ("crates/a/src/y.rs", "pub fn helper() {}\n"),
            ],
            &[("a", &[])],
        );
        assert_eq!(g.edges.len(), 1);
        assert_eq!(g.fns[g.edges[0].to].file, "crates/a/src/x.rs");
    }

    #[test]
    fn dot_renders_roles() {
        let g = graph_of(
            &[(
                "crates/a/src/lib.rs",
                "pub fn go() { helper(); }\nfn helper() {}\n",
            )],
            &[("a", &[])],
        );
        let mut roles = BTreeMap::new();
        roles.insert(0usize, "source");
        let dot = g.to_dot(&roles, &BTreeMap::new());
        assert!(dot.contains("digraph mpflow"));
        assert!(dot.contains("lightskyblue"));
        assert!(dot.contains("->"));
    }

    #[test]
    fn dot_colors_ordering_edges() {
        let g = graph_of(
            &[(
                "crates/a/src/lib.rs",
                "pub fn go() { helper(); }\nfn helper() {}\n",
            )],
            &[("a", &[])],
        );
        let mut edge_roles = BTreeMap::new();
        edge_roles.insert((g.edges[0].from, g.edges[0].to), "journal");
        let dot = g.to_dot(&BTreeMap::new(), &edge_roles);
        assert!(dot.contains("forestgreen"), "{dot}");
        assert!(dot.contains("label=\"journal\""), "{dot}");
    }
}
