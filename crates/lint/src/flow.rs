//! Interprocedural taint and panic-reachability passes (`S0xx`/`R0xx`).
//!
//! Both passes run over the workspace [`CallGraph`]. The [`FlowConfig`]
//! names three function sets by `(impl type, name)`:
//!
//! * **sources** — where untrusted bytes enter: REST/webui request
//!   handlers and the staged-document loader.
//! * **sanitizers** — the choke points the paper mandates: the
//!   QueryEngine sanitizer family and the data V&V validators.
//! * **sinks** — where a filter or document reaches the datastore:
//!   `Filter::parse`/`compile`, the `Collection` query/update/delete
//!   surface, and the aggregation entry points.
//!
//! **S001** fires for every call chain from a source to a sink on which
//! no function is a sanitizer or directly calls one; the diagnostic
//! carries the full chain. **S002** fires when the config names a
//! function the workspace no longer defines (config drift would
//! otherwise silently disable the pass). **R001** fires for every
//! `unwrap`/`expect`/panic-macro site reachable from the public `mapi`
//! surface, with the shortest call chain from a `pub fn`; **R002** is
//! the same for index/slice sites; **R003** fires for an
//! `mp-flow: allow(...)` comment with no justification. All codes are
//! errors — CI gates the workspace at zero.

use crate::callgraph::{scan_tree, CallGraph};
use crate::diagnostics::Diagnostic;
use crate::summary::FnSummary;
use std::collections::{BTreeMap, VecDeque};
use std::path::Path;

/// A function named by the config: optional impl type plus name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnRef {
    /// `Some("QueryEngine")` to match only methods of that type; `None`
    /// matches free functions and methods of any type.
    pub type_name: Option<String>,
    /// Function name.
    pub name: String,
}

impl FnRef {
    /// `"QueryEngine::sanitize"` or `"visibility_filter"`.
    pub fn parse(s: &str) -> Self {
        match s.split_once("::") {
            Some((t, n)) => FnRef {
                type_name: Some(t.to_string()),
                name: n.to_string(),
            },
            None => FnRef {
                type_name: None,
                name: s.to_string(),
            },
        }
    }

    pub(crate) fn is_match(&self, f: &FnSummary) -> bool {
        if f.name != self.name {
            return false;
        }
        match &self.type_name {
            Some(t) => f.impl_type.as_deref() == Some(t.as_str()),
            None => true,
        }
    }

    pub(crate) fn display(&self) -> String {
        match &self.type_name {
            Some(t) => format!("{}::{}", t, self.name),
            None => self.name.clone(),
        }
    }
}

/// Configuration for both flow passes.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// Untrusted-input entry points.
    pub sources: Vec<FnRef>,
    /// Sanitizer choke points; a chain crossing one is clean.
    pub sanitizers: Vec<FnRef>,
    /// Datastore sinks.
    pub sinks: Vec<FnRef>,
    /// Crate whose `pub fn`s are the panic-reachability roots.
    pub roots_crate: String,
}

impl FlowConfig {
    /// The Materials Project workspace defaults: REST/webui handlers and
    /// the staging loader as sources; the QueryEngine sanitizer family,
    /// data V&V, and the server-side filter builders as sanitizers; the
    /// filter parser/compiler, the `Collection` query surface, and the
    /// aggregation pipeline as sinks. Roots for panic reachability are
    /// the public functions of `mapi`.
    pub fn materials_project_defaults() -> Self {
        let parse = |v: &[&str]| v.iter().map(|s| FnRef::parse(s)).collect();
        FlowConfig {
            sources: parse(&[
                "MaterialsApi::handle",
                "MaterialsApi::structured_query",
                "WebUi::search_page",
                "WebUi::material_page",
                "WebUi::stats_page",
                "WebUi::phase_diagram_page",
                "DataLoader::drain",
                "Sandbox::share",
                "Sandbox::publish",
            ]),
            sanitizers: parse(&[
                "QueryEngine::sanitize",
                "QueryEngine::sanitize_level",
                "QueryEngine::sanitize_pipeline",
                "RuleSet::validate",
                "visibility_filter",
                "Sandbox::scalar_only",
            ]),
            sinks: parse(&[
                "Filter::parse",
                "Filter::compile",
                "Collection::find",
                "Collection::find_with",
                "Collection::find_one",
                "Collection::find_filter",
                "Collection::count",
                "Collection::count_filter",
                "Collection::distinct",
                "Collection::update_one",
                "Collection::update_many",
                "Collection::upsert",
                "Collection::find_one_and_update",
                "Collection::delete_one",
                "Collection::delete_many",
                "Collection::aggregate",
                "parse_pipeline",
                "run_pipeline",
            ]),
            roots_crate: "mapi".to_string(),
        }
    }
}

/// Resolve a ref list against the graph. Returns the matched indexes
/// and an S002 diagnostic for every ref with zero matches.
fn resolve(
    graph: &CallGraph,
    refs: &[FnRef],
    kind: &str,
    diags: &mut Vec<Diagnostic>,
) -> Vec<bool> {
    let mut mask = vec![false; graph.fns.len()];
    for r in refs {
        let mut hit = false;
        for (i, f) in graph.fns.iter().enumerate() {
            if r.is_match(f) {
                mask[i] = true;
                hit = true;
            }
        }
        if !hit {
            diags.push(
                Diagnostic::error(
                    "S002",
                    r.display(),
                    format!(
                        "flow config names {kind} `{}` but the workspace defines no such \
                         function — the pass would silently skip it",
                        r.display()
                    ),
                )
                .with_suggestion(
                    "update FlowConfig (or materials_project_defaults) to match the renamed \
                     or removed function",
                ),
            );
        }
    }
    mask
}

fn chain_text(graph: &CallGraph, parent: &BTreeMap<usize, usize>, mut node: usize) -> String {
    let mut rev = vec![node];
    while let Some(&p) = parent.get(&node) {
        node = p;
        rev.push(node);
    }
    rev.reverse();
    rev.iter()
        .map(|&i| graph.fns[i].qualified())
        .collect::<Vec<_>>()
        .join(" -> ")
}

/// S0xx: taint pass. A function is *protected* when it is a sanitizer
/// or directly calls one; BFS from each unprotected source never
/// expands through a protected node, and every sink reached yields one
/// S001 with the full chain.
pub fn analyze_taint(graph: &CallGraph, config: &FlowConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let sources = resolve(graph, &config.sources, "source", &mut diags);
    let sanitizers = resolve(graph, &config.sanitizers, "sanitizer", &mut diags);
    let sinks = resolve(graph, &config.sinks, "sink", &mut diags);

    let protected: Vec<bool> = (0..graph.fns.len())
        .map(|i| sanitizers[i] || graph.out[i].iter().any(|&(j, _)| sanitizers[j]))
        .collect();

    let mut reported: Vec<bool> = vec![false; graph.fns.len()];
    for src in 0..graph.fns.len() {
        if !sources[src] || protected[src] {
            continue;
        }
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut seen = vec![false; graph.fns.len()];
        seen[src] = true;
        let mut q = VecDeque::from([src]);
        while let Some(u) = q.pop_front() {
            for &(v, line) in &graph.out[u] {
                if sinks[v] {
                    if reported[v] && parent.contains_key(&v) {
                        continue;
                    }
                    let chain = format!(
                        "{} -> {}",
                        chain_text(graph, &parent, u),
                        graph.fns[v].qualified()
                    );
                    let caller = &graph.fns[u];
                    diags.push(
                        Diagnostic::error(
                            "S001",
                            format!("{}:{}", caller.file, line),
                            format!(
                                "untrusted input from `{}` reaches sink `{}` with no \
                                 sanitizer on the chain: {}",
                                graph.fns[src].qualified(),
                                graph.fns[v].qualified(),
                                chain
                            ),
                        )
                        .with_suggestion(
                            "route the request through QueryEngine::sanitize (or validate \
                             the document / reject non-scalar ids) before it reaches the \
                             datastore",
                        ),
                    );
                    reported[v] = true;
                    continue;
                }
                if seen[v] || protected[v] {
                    continue;
                }
                seen[v] = true;
                parent.insert(v, u);
                q.push_back(v);
            }
        }
    }
    diags
}

/// R0xx: panic-reachability pass. Roots are every non-test `pub fn` of
/// `config.roots_crate`; a multi-source BFS yields shortest chains, and
/// each panic site in a reachable function is one diagnostic.
pub fn analyze_panic_reach(graph: &CallGraph, config: &FlowConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // R003 everywhere, reachable or not — a justification-free allow is
    // wrong even in dead code.
    for f in &graph.fns {
        for &line in &f.bad_allows {
            diags.push(
                Diagnostic::error(
                    "R003",
                    format!("{}:{line}", f.file),
                    format!(
                        "`mp-flow: allow(...)` in `{}` has no justification",
                        f.qualified()
                    ),
                )
                .with_suggestion(
                    "append a justification after the closing paren, e.g. \
                     `mp-flow: allow(R001) — invariant: checked non-empty above`",
                ),
            );
        }
    }

    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut seen = vec![false; graph.fns.len()];
    let mut q = VecDeque::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_pub && f.crate_name == config.roots_crate {
            seen[i] = true;
            q.push_back(i);
        }
    }
    let mut order = Vec::new();
    while let Some(u) = q.pop_front() {
        order.push(u);
        for &(v, _) in &graph.out[u] {
            if !seen[v] {
                seen[v] = true;
                parent.insert(v, u);
                q.push_back(v);
            }
        }
    }

    for &i in &order {
        let f = &graph.fns[i];
        for p in &f.panics {
            let chain = chain_text(graph, &parent, i);
            diags.push(
                Diagnostic::error(
                    p.kind.code(),
                    format!("{}:{}", f.file, p.line),
                    format!(
                        "{} in `{}` is reachable from the public `{}` surface: {} \
                         -> panic site at line {}",
                        p.kind.describe(),
                        f.qualified(),
                        config.roots_crate,
                        chain,
                        p.line
                    ),
                )
                .with_suggestion(
                    "return a typed error (ApiError) instead, or add a justified \
                     `mp-flow: allow(...)` if the invariant genuinely holds",
                ),
            );
        }
    }
    diags
}

/// Run both passes.
pub fn analyze_flow(graph: &CallGraph, config: &FlowConfig) -> Vec<Diagnostic> {
    let mut diags = analyze_taint(graph, config);
    diags.extend(analyze_panic_reach(graph, config));
    diags
}

/// Role map for DOT rendering: source / sanitizer / sink / panics.
pub fn roles(graph: &CallGraph, config: &FlowConfig) -> BTreeMap<usize, &'static str> {
    let mut m = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if config.sources.iter().any(|r| r.is_match(f)) {
            m.insert(i, "source");
        } else if config.sanitizers.iter().any(|r| r.is_match(f)) {
            m.insert(i, "sanitizer");
        } else if config.sinks.iter().any(|r| r.is_match(f)) {
            m.insert(i, "sink");
        } else if !f.panics.is_empty() {
            m.insert(i, "panics");
        }
    }
    m
}

/// Scan the workspace at `root` and run both passes with the Materials
/// Project defaults.
pub fn analyze_flow_tree(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let graph = scan_tree(root)?;
    Ok(analyze_flow(
        &graph,
        &FlowConfig::materials_project_defaults(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::summarize_source;

    fn graph_of(files: &[(&str, &str)], deps: &[(&str, &[&str])]) -> CallGraph {
        let mut fns = Vec::new();
        for (path, src) in files {
            fns.extend(summarize_source(path, src));
        }
        let mut dep_map = std::collections::BTreeMap::new();
        for (k, vs) in deps {
            dep_map.insert(
                (*k).to_string(),
                vs.iter().map(|v| (*v).to_string()).collect(),
            );
        }
        CallGraph::build(fns, &dep_map)
    }

    fn cfg(sources: &[&str], sanitizers: &[&str], sinks: &[&str], roots: &str) -> FlowConfig {
        FlowConfig {
            sources: sources.iter().map(|s| FnRef::parse(s)).collect(),
            sanitizers: sanitizers.iter().map(|s| FnRef::parse(s)).collect(),
            sinks: sinks.iter().map(|s| FnRef::parse(s)).collect(),
            roots_crate: roots.to_string(),
        }
    }

    /// A seeded sanitizer bypass three calls deep is caught with the
    /// full chain in the message.
    #[test]
    fn taint_reports_bypass_with_full_chain() {
        let g = graph_of(
            &[
                (
                    "crates/api/src/lib.rs",
                    "pub struct Api;\nimpl Api {\n\
                     pub fn handle(&self, q: &str) { relay(q); }\n}\n\
                     fn relay(q: &str) { forward(q); }\n\
                     fn forward(q: &str) { Filter::parse(q); }\n",
                ),
                (
                    "crates/store/src/lib.rs",
                    "pub struct Filter;\nimpl Filter {\n\
                     pub fn parse(q: &str) -> Filter { Filter }\n}\n",
                ),
            ],
            &[("api", &["store"]), ("store", &[])],
        );
        let diags = analyze_taint(
            &g,
            &cfg(
                &["Api::handle"],
                &["Engine::sanitize"],
                &["Filter::parse"],
                "api",
            ),
        );
        let s001: Vec<_> = diags.iter().filter(|d| d.code == "S001").collect();
        assert_eq!(s001.len(), 1, "{diags:?}");
        let msg = &s001[0].message;
        assert!(
            msg.contains("api::Api::handle -> api::relay -> api::forward -> store::Filter::parse"),
            "{msg}"
        );
        // The sanitizer ref has no workspace match → S002 config drift.
        assert!(diags.iter().any(|d| d.code == "S002"), "{diags:?}");
    }

    /// The same chain with a sanitizer call on it is clean.
    #[test]
    fn taint_chain_through_sanitizer_is_clean() {
        let g = graph_of(
            &[
                (
                    "crates/api/src/lib.rs",
                    "pub struct Api;\nimpl Api {\n\
                     pub fn handle(&self, q: &str) { relay(q); }\n}\n\
                     fn relay(q: &str) { Engine::sanitize(q); forward(q); }\n\
                     fn forward(q: &str) { Filter::parse(q); }\n\
                     pub struct Engine;\nimpl Engine {\n\
                     pub fn sanitize(q: &str) {}\n}\n",
                ),
                (
                    "crates/store/src/lib.rs",
                    "pub struct Filter;\nimpl Filter {\n\
                     pub fn parse(q: &str) -> Filter { Filter }\n}\n",
                ),
            ],
            &[("api", &["store"]), ("store", &[])],
        );
        let diags = analyze_taint(
            &g,
            &cfg(
                &["Api::handle"],
                &["Engine::sanitize"],
                &["Filter::parse"],
                "api",
            ),
        );
        assert!(
            diags.iter().all(|d| d.code != "S001"),
            "sanitized chain flagged: {diags:?}"
        );
    }

    /// A seeded request-path unwrap two calls deep is caught with the
    /// shortest chain.
    #[test]
    fn panic_reach_reports_unwrap_with_chain() {
        let g = graph_of(
            &[(
                "crates/api/src/lib.rs",
                "pub struct Api;\nimpl Api {\n\
                 pub fn handle(&self, q: &str) { route(q); }\n}\n\
                 fn route(q: &str) { pick(q); }\n\
                 fn pick(q: &str) -> char { q.chars().next().unwrap() }\n",
            )],
            &[("api", &[])],
        );
        let diags = analyze_panic_reach(&g, &cfg(&[], &[], &[], "api"));
        let r001: Vec<_> = diags.iter().filter(|d| d.code == "R001").collect();
        assert_eq!(r001.len(), 1, "{diags:?}");
        assert!(
            r001[0]
                .message
                .contains("api::Api::handle -> api::route -> api::pick"),
            "{}",
            r001[0].message
        );
        assert!(r001[0].path.starts_with("crates/api/src/lib.rs:"));
    }

    /// Unreachable panics (private fn nobody on the surface calls) are
    /// not reported; a justified allow suppresses a reachable one.
    #[test]
    fn panic_reach_respects_reachability_and_allowlist() {
        let g = graph_of(
            &[(
                "crates/api/src/lib.rs",
                "pub struct Api;\nimpl Api {\n\
                 pub fn handle(&self) { safe(); }\n}\n\
                 fn safe() -> u8 {\n\
                 \x20   // mp-flow: allow(R001) — invariant: static non-empty literal\n\
                 \x20   *[1u8].first().unwrap()\n\
                 }\n\
                 fn dead(x: Option<u8>) -> u8 { x.unwrap() }\n",
            )],
            &[("api", &[])],
        );
        let diags = analyze_panic_reach(&g, &cfg(&[], &[], &[], "api"));
        assert!(
            diags.iter().all(|d| d.code != "R001"),
            "allowed/unreachable site flagged: {diags:?}"
        );
    }

    /// An allow with no justification is an R003 error.
    #[test]
    fn bare_allow_is_r003() {
        let g = graph_of(
            &[(
                "crates/api/src/lib.rs",
                "pub fn handle(x: Option<u8>) -> u8 {\n\
                 \x20   x.unwrap() // mp-flow: allow(R001)\n\
                 }\n",
            )],
            &[("api", &[])],
        );
        let diags = analyze_panic_reach(&g, &cfg(&[], &[], &[], "api"));
        assert!(diags.iter().any(|d| d.code == "R003"), "{diags:?}");
    }

    /// Index sites are R002 with the same reachability rules.
    #[test]
    fn index_sites_are_r002() {
        let g = graph_of(
            &[(
                "crates/api/src/lib.rs",
                "pub fn handle(xs: &[u8]) -> u8 { first(xs) }\n\
                 fn first(xs: &[u8]) -> u8 { xs[0] }\n",
            )],
            &[("api", &[])],
        );
        let diags = analyze_panic_reach(&g, &cfg(&[], &[], &[], "api"));
        assert!(diags.iter().any(|d| d.code == "R002"), "{diags:?}");
    }

    #[test]
    fn workspace_is_flow_clean() {
        // The acceptance gate: both flow passes report zero findings on
        // the whole workspace with the Materials Project defaults. Every
        // surviving panic site carries a justified `mp-flow: allow(...)`.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = analyze_flow_tree(&root).expect("scan workspace");
        assert!(
            diags.is_empty(),
            "workspace flow findings:\n{}",
            crate::diagnostics::render(&diags)
        );
    }
}
