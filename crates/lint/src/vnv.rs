//! Pass 3: data validation & verification (V&V) for staged documents.
//!
//! Declarative per-collection rules run before documents are committed:
//!
//! - `D001` (error): required field missing.
//! - `D002` (error): field present with the wrong type.
//! - `D003` (error): numeric field out of its allowed range.
//! - `D004` (error): cross-field invariant violated (e.g.
//!   `output.energy_per_atom * nsites ≈ output.energy`).
//!
//! Builders add rules with the fluent [`RuleSet`] API; [`RuleSet::task_defaults`]
//! encodes the contract of the DFT task documents this pipeline stages.

use mp_docstore::value::{get_path, type_name};
use serde_json::Value;

use crate::diagnostics::Diagnostic;
use crate::schema::TypeSet;

/// One check applied to a dotted field path.
#[derive(Debug, Clone)]
pub enum FieldCheck {
    /// The field must exist (and not be `null`).
    Required,
    /// When present, the field's type must be in the set.
    TypeIs(TypeSet),
    /// When present and numeric, the value must lie in `[min, max]`
    /// (either bound optional).
    Range {
        /// Inclusive lower bound.
        min: Option<f64>,
        /// Inclusive upper bound.
        max: Option<f64>,
    },
}

/// All checks for one field path.
#[derive(Debug, Clone)]
pub struct FieldRule {
    /// Dotted path into the document.
    pub path: String,
    /// Checks applied in order.
    pub checks: Vec<FieldCheck>,
}

/// A relation between fields that must hold for the document to be sane.
#[derive(Debug, Clone)]
pub enum Invariant {
    /// `a * b ≈ out` within a relative tolerance.
    ProductEquals {
        /// First factor path.
        a: String,
        /// Second factor path.
        b: String,
        /// Product path.
        out: String,
        /// Allowed relative error.
        rel_tol: f64,
    },
}

/// Declarative V&V contract for one collection.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    /// Collection the contract applies to (diagnostics only).
    pub collection: String,
    /// Per-field rules.
    pub rules: Vec<FieldRule>,
    /// Cross-field invariants.
    pub invariants: Vec<Invariant>,
}

impl RuleSet {
    /// Empty contract for `collection`.
    pub fn new(collection: impl Into<String>) -> Self {
        RuleSet {
            collection: collection.into(),
            ..RuleSet::default()
        }
    }

    fn rule_mut(&mut self, path: &str) -> &mut FieldRule {
        if let Some(i) = self.rules.iter().position(|r| r.path == path) {
            &mut self.rules[i]
        } else {
            self.rules.push(FieldRule {
                path: path.to_string(),
                checks: Vec::new(),
            });
            self.rules.last_mut().expect("just pushed")
        }
    }

    /// The field must exist and be non-null.
    pub fn require(mut self, path: &str) -> Self {
        self.rule_mut(path).checks.push(FieldCheck::Required);
        self
    }

    /// When present, the field must hold one of `types`.
    pub fn typed(mut self, path: &str, types: TypeSet) -> Self {
        self.rule_mut(path).checks.push(FieldCheck::TypeIs(types));
        self
    }

    /// When present, the numeric field must lie in the inclusive range.
    pub fn range(mut self, path: &str, min: Option<f64>, max: Option<f64>) -> Self {
        self.rule_mut(path)
            .checks
            .push(FieldCheck::Range { min, max });
        self
    }

    /// Require `a * b ≈ out` within `rel_tol` relative error.
    pub fn product_equals(mut self, a: &str, b: &str, out: &str, rel_tol: f64) -> Self {
        self.invariants.push(Invariant::ProductEquals {
            a: a.to_string(),
            b: b.to_string(),
            out: out.to_string(),
            rel_tol,
        });
        self
    }

    /// The contract for DFT task documents staged into `tasks`: identity
    /// fields present and typed, physically sensible ranges, and the
    /// energy-extensivity invariant.
    pub fn task_defaults() -> Self {
        RuleSet::new("tasks")
            .require("status")
            .typed("status", TypeSet::STRING)
            .require("formula")
            .typed("formula", TypeSet::STRING)
            .require("chemsys")
            .typed("chemsys", TypeSet::STRING)
            .require("nsites")
            .typed("nsites", TypeSet::INT)
            .range("nsites", Some(1.0), None)
            .typed("elements", TypeSet::ARRAY)
            .require("output.energy_per_atom")
            .typed("output.energy_per_atom", TypeSet::NUMBER)
            .require("output.energy")
            .typed("output.energy", TypeSet::NUMBER)
            .typed("output.band_gap", TypeSet::NUMBER)
            .range("output.band_gap", Some(0.0), None)
            .product_equals("output.energy_per_atom", "nsites", "output.energy", 1e-6)
    }

    /// Validate one document against the contract.
    pub fn validate(&self, doc: &Value) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for rule in &self.rules {
            let value = get_path(doc, &rule.path);
            for check in &rule.checks {
                match check {
                    FieldCheck::Required => {
                        if value.map(Value::is_null).unwrap_or(true) {
                            out.push(
                                Diagnostic::error(
                                    "D001",
                                    &rule.path,
                                    format!(
                                        "required field `{}` is missing from the staged `{}` document",
                                        rule.path, self.collection
                                    ),
                                )
                                .with_suggestion("fix the builder that assembles this document"),
                            );
                        }
                    }
                    FieldCheck::TypeIs(types) => {
                        if let Some(v) = value.filter(|v| !v.is_null()) {
                            if !types.intersects(TypeSet::of(v)) {
                                out.push(Diagnostic::error(
                                    "D002",
                                    &rule.path,
                                    format!(
                                        "`{}` is {} but the contract requires {types}",
                                        rule.path,
                                        type_name(v)
                                    ),
                                ));
                            }
                        }
                    }
                    FieldCheck::Range { min, max } => {
                        if let Some(x) = value.and_then(Value::as_f64) {
                            let low = min.map(|m| x < m).unwrap_or(false);
                            let high = max.map(|m| x > m).unwrap_or(false);
                            if low || high {
                                out.push(Diagnostic::error(
                                    "D003",
                                    &rule.path,
                                    format!(
                                        "`{}` = {x} is outside the allowed range [{}, {}]",
                                        rule.path,
                                        min.map(|m| m.to_string()).unwrap_or_else(|| "-inf".into()),
                                        max.map(|m| m.to_string()).unwrap_or_else(|| "+inf".into()),
                                    ),
                                ));
                            }
                        }
                    }
                }
            }
        }
        for inv in &self.invariants {
            match inv {
                Invariant::ProductEquals {
                    a,
                    b,
                    out: prod,
                    rel_tol,
                } => {
                    let (Some(va), Some(vb), Some(vp)) = (
                        get_path(doc, a).and_then(Value::as_f64),
                        get_path(doc, b).and_then(Value::as_f64),
                        get_path(doc, prod).and_then(Value::as_f64),
                    ) else {
                        continue; // missing operands are D001/D002's job
                    };
                    let expect = va * vb;
                    let scale = expect.abs().max(vp.abs()).max(1e-12);
                    if (expect - vp).abs() / scale > *rel_tol {
                        out.push(
                            Diagnostic::error(
                                "D004",
                                prod,
                                format!(
                                    "invariant violated: `{a}` * `{b}` = {expect} but `{prod}` = {vp}"
                                ),
                            )
                            .with_suggestion("these fields disagree; the document is inconsistent"),
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::has_errors;
    use serde_json::json;

    fn good_task() -> Value {
        json!({
            "status": "converged",
            "formula": "Li2O",
            "chemsys": "Li-O",
            "nsites": 3,
            "elements": ["Li", "O"],
            "output": {"energy_per_atom": -2.5, "energy": -7.5, "band_gap": 1.2}
        })
    }

    #[test]
    fn clean_document_passes() {
        let diags = RuleSet::task_defaults().validate(&good_task());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn d001_missing_required_field() {
        let mut doc = good_task();
        doc.as_object_mut().unwrap().remove("chemsys");
        let diags = RuleSet::task_defaults().validate(&doc);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "D001" && d.path == "chemsys"),
            "{diags:?}"
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn d002_wrong_type() {
        let mut doc = good_task();
        doc["nsites"] = json!("three");
        let diags = RuleSet::task_defaults().validate(&doc);
        assert!(
            diags.iter().any(|d| d.code == "D002" && d.path == "nsites"),
            "{diags:?}"
        );
    }

    #[test]
    fn d003_out_of_range() {
        let mut doc = good_task();
        doc["output"]["band_gap"] = json!(-0.4);
        let diags = RuleSet::task_defaults().validate(&doc);
        assert!(diags.iter().any(|d| d.code == "D003"), "{diags:?}");
    }

    #[test]
    fn d004_energy_extensivity() {
        let mut doc = good_task();
        doc["output"]["energy"] = json!(-99.0);
        let diags = RuleSet::task_defaults().validate(&doc);
        assert!(diags.iter().any(|d| d.code == "D004"), "{diags:?}");
    }

    #[test]
    fn custom_rules_compose() {
        let rules = RuleSet::new("materials").require("mps_id").range(
            "stability.e_above_hull",
            Some(0.0),
            Some(10.0),
        );
        let diags = rules.validate(&json!({"stability": {"e_above_hull": 42.0}}));
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&"D001") && codes.contains(&"D003"),
            "{diags:?}"
        );
    }
}
