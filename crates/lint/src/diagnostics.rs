//! Rustc-style diagnostics shared by every analysis pass.
//!
//! A [`Diagnostic`] carries a severity, a stable code (`Q…` query, `W…`
//! workflow, `D…` data V&V), a span-ish path locating the problem (a field
//! path, a `fw_id`, a `collection.field`), a human message, and an optional
//! suggestion. Stable codes are part of the public contract: tests and
//! downstream tooling match on them, so codes are never renumbered.

use std::fmt;

/// How bad a finding is.
///
/// `Error` findings make gates (query sanitizer, `add_workflow`, data
/// loading) reject the input; `Warning`s are surfaced but do not block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not disqualifying (e.g. unindexed scan).
    Warning,
    /// Definitely wrong (e.g. type mismatch, workflow cycle).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding from an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Blocking or advisory.
    pub severity: Severity,
    /// Stable code, e.g. `Q001`, `W001`, `D001`.
    pub code: &'static str,
    /// Where: a field path, `fw_id`, or `collection.field`.
    pub path: String,
    /// What went wrong.
    pub message: String,
    /// How to fix it, when the analyzer has a concrete idea.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A blocking finding.
    pub fn error(code: &'static str, path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            path: path.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// An advisory finding.
    pub fn warning(
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            path: path.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach a fix-it hint.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at `{}`: {}",
            self.severity, self.code, self.path, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (help: {s})")?;
        }
        Ok(())
    }
}

/// True when any diagnostic is `Error`-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Render a batch as a JSON array (errors first) for machine consumers:
/// the CI `flow-lint` job and editor integrations parse this shape.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.cmp(b.code)));
    let items: Vec<serde_json::Value> = sorted
        .iter()
        .map(|d| {
            serde_json::json!({
                "severity": d.severity.to_string(),
                "code": d.code,
                "path": d.path,
                "message": d.message,
                "suggestion": d.suggestion,
            })
        })
        .collect();
    serde_json::Value::Array(items).to_string()
}

/// Render a batch one-per-line (errors first) for error bodies and CLI output.
pub fn render(diags: &[Diagnostic]) -> String {
    let mut sorted: Vec<&Diagnostic> = diags.iter().collect();
    sorted.sort_by(|a, b| b.severity.cmp(&a.severity).then_with(|| a.code.cmp(b.code)));
    sorted
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_path_and_suggestion() {
        let d = Diagnostic::error("Q001", "output.energy", "type mismatch")
            .with_suggestion("compare against a number");
        let s = d.to_string();
        assert!(s.contains("error[Q001]"));
        assert!(s.contains("`output.energy`"));
        assert!(s.contains("help:"));
    }

    #[test]
    fn has_errors_distinguishes_severities() {
        let warn = Diagnostic::warning("Q004", "a", "unindexed");
        let err = Diagnostic::error("Q002", "a", "always false");
        assert!(!has_errors(std::slice::from_ref(&warn)));
        assert!(has_errors(&[warn, err]));
    }

    #[test]
    fn render_json_is_parseable_and_ordered() {
        let out = render_json(&[
            Diagnostic::warning("S001", "a", "tainted"),
            Diagnostic::error("R001", "b", "panics").with_suggestion("handle the None"),
        ]);
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["severity"], "error");
        assert_eq!(arr[0]["code"], "R001");
        assert_eq!(arr[1]["suggestion"], serde_json::Value::Null);
    }

    #[test]
    fn render_puts_errors_first() {
        let out = render(&[
            Diagnostic::warning("Q004", "a", "unindexed"),
            Diagnostic::error("Q001", "b", "mismatch"),
        ]);
        let first = out.lines().next().unwrap();
        assert!(first.starts_with("error"), "{out}");
    }
}
