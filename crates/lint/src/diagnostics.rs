//! Rustc-style diagnostics shared by every analysis pass.
//!
//! A [`Diagnostic`] carries a severity, a stable code (`Q…` query, `W…`
//! workflow, `D…` data V&V), a span-ish path locating the problem (a field
//! path, a `fw_id`, a `collection.field`), a human message, and an optional
//! suggestion. Stable codes are part of the public contract: tests and
//! downstream tooling match on them, so codes are never renumbered.

use std::fmt;

/// How bad a finding is.
///
/// `Error` findings make gates (query sanitizer, `add_workflow`, data
/// loading) reject the input; `Warning`s are surfaced but do not block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not disqualifying (e.g. unindexed scan).
    Warning,
    /// Definitely wrong (e.g. type mismatch, workflow cycle).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding from an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Blocking or advisory.
    pub severity: Severity,
    /// Stable code, e.g. `Q001`, `W001`, `D001`.
    pub code: &'static str,
    /// Where: a field path, `fw_id`, or `collection.field`.
    pub path: String,
    /// What went wrong.
    pub message: String,
    /// How to fix it, when the analyzer has a concrete idea.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A blocking finding.
    pub fn error(code: &'static str, path: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            path: path.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// An advisory finding.
    pub fn warning(
        code: &'static str,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            code,
            path: path.into(),
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach a fix-it hint.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at `{}`: {}",
            self.severity, self.code, self.path, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, " (help: {s})")?;
        }
        Ok(())
    }
}

/// True when any diagnostic is `Error`-severity.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Deterministic ordering shared by every renderer: by file, then
/// numeric line, then code (then message, for full stability). The
/// `path` field is `file:line` for the source passes; a trailing
/// `:NNN` is parsed as the line. Span-less paths (field paths,
/// `fw_id`s) sort as line 0 of themselves.
fn sort_key(d: &Diagnostic) -> (&str, usize, &'static str, &str) {
    let (file, line) = match d.path.rsplit_once(':') {
        Some((f, n)) => match n.parse::<usize>() {
            Ok(l) => (f, l),
            Err(_) => (d.path.as_str(), 0),
        },
        None => (d.path.as_str(), 0),
    };
    (file, line, d.code, d.message.as_str())
}

fn sorted(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
    let mut v: Vec<&Diagnostic> = diags.iter().collect();
    v.sort_by(|a, b| sort_key(a).cmp(&sort_key(b)));
    v
}

fn finding_json(d: &Diagnostic) -> serde_json::Value {
    serde_json::json!({
        "severity": d.severity.to_string(),
        "code": d.code,
        "path": d.path,
        "message": d.message,
        "suggestion": d.suggestion,
    })
}

/// Render a batch as a JSON array, ordered by (file, line, code), for
/// machine consumers and editor integrations.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<serde_json::Value> = sorted(diags).iter().map(|d| finding_json(d)).collect();
    serde_json::Value::Array(items).to_string()
}

/// The one `--json` envelope every `mp-lint` subcommand emits:
/// `{"pass": <name>, "findings": [...], "counts": {"error": n,
/// "warning": n, "total": n}}`, findings ordered by (file, line, code).
/// CI jobs and editor integrations parse this shape; the schema is
/// documented in DESIGN.md §12.
pub fn render_envelope(pass: &str, diags: &[Diagnostic]) -> String {
    let findings: Vec<serde_json::Value> = sorted(diags).iter().map(|d| finding_json(d)).collect();
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    serde_json::json!({
        "pass": pass,
        "findings": findings,
        "counts": {
            "error": errors,
            "warning": diags.len() - errors,
            "total": diags.len(),
        },
    })
    .to_string()
}

/// Render a batch one-per-line, ordered by (file, line, code), for
/// error bodies and CLI output.
pub fn render(diags: &[Diagnostic]) -> String {
    sorted(diags)
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_code_path_and_suggestion() {
        let d = Diagnostic::error("Q001", "output.energy", "type mismatch")
            .with_suggestion("compare against a number");
        let s = d.to_string();
        assert!(s.contains("error[Q001]"));
        assert!(s.contains("`output.energy`"));
        assert!(s.contains("help:"));
    }

    #[test]
    fn has_errors_distinguishes_severities() {
        let warn = Diagnostic::warning("Q004", "a", "unindexed");
        let err = Diagnostic::error("Q002", "a", "always false");
        assert!(!has_errors(std::slice::from_ref(&warn)));
        assert!(has_errors(&[warn, err]));
    }

    #[test]
    fn render_json_is_parseable_and_ordered() {
        let out = render_json(&[
            Diagnostic::warning("S001", "b.rs:3", "tainted"),
            Diagnostic::error("R001", "a.rs:7", "panics").with_suggestion("handle the None"),
        ]);
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        // Ordered by (file, line, code): a.rs before b.rs.
        assert_eq!(arr[0]["code"], "R001");
        assert_eq!(arr[1]["suggestion"], serde_json::Value::Null);
    }

    #[test]
    fn render_orders_by_file_line_code() {
        let out = render(&[
            Diagnostic::warning("Q004", "x.rs:10", "later line"),
            Diagnostic::error("Q001", "x.rs:2", "earlier line"),
            Diagnostic::error("H001", "x.rs:2", "same line, smaller code"),
            Diagnostic::warning("W001", "a-field-path", "span-less"),
        ]);
        let lines: Vec<&str> = out.lines().collect();
        // Span-less paths sort as line 0 of themselves; `:10` sorts
        // after `:2` numerically, not lexically.
        assert!(lines[0].contains("a-field-path"), "{out}");
        assert!(lines[1].contains("H001"), "{out}");
        assert!(lines[2].contains("Q001"), "{out}");
        assert!(lines[3].contains("Q004"), "{out}");
    }

    #[test]
    fn envelope_carries_pass_findings_and_counts() {
        let out = render_envelope(
            "hotpath",
            &[
                Diagnostic::error("H001", "x.rs:2", "clone per doc"),
                Diagnostic::warning("P001", "f", "collscan"),
            ],
        );
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["pass"], "hotpath");
        assert_eq!(v["counts"]["error"], 1);
        assert_eq!(v["counts"]["warning"], 1);
        assert_eq!(v["counts"]["total"], 2);
        assert_eq!(v["findings"].as_array().unwrap().len(), 2);
        let empty: serde_json::Value = serde_json::from_str(&render_envelope("flow", &[])).unwrap();
        assert_eq!(empty["counts"]["total"], 0);
        assert_eq!(empty["findings"].as_array().unwrap().len(), 0);
    }
}
