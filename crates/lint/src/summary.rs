//! Per-function source summaries for the mp-flow interprocedural passes.
//!
//! [`summarize_source`] reduces one Rust source file to a list of
//! [`FnSummary`]: every non-test function with its call sites, panic
//! sites (unwrap/expect/panic-family macros and index/slice
//! expressions), and lock acquisitions. The whole-workspace call graph
//! ([`crate::callgraph`]) and the taint / panic-reachability passes
//! ([`crate::flow`]) are built from nothing but these summaries.
//!
//! Unlike the line-based `L0xx`/`P00x` scanners, this pass first runs a
//! small lexer ([`mask_source`]) that blanks out string literals, char
//! literals, and comments while preserving byte offsets — the SVG
//! renderers interpolate `{`/`}` inside format strings and
//! `canonical_json` pushes brace *characters*, either of which would
//! corrupt naive brace-depth tracking. The masked text is what the
//! structural scan reads; the raw text is consulted only for
//! `mp-flow: allow(...)` suppression comments.
//!
//! Suppression: `mp-flow: allow(RXXX) — justification` on the panic
//! site's line, the line directly above it, or the function's signature
//! line (covering the whole body). A justification is mandatory; an
//! allow with no prose after the closing paren is recorded in
//! [`FnSummary::bad_allows`] and surfaced as `R003` by the flow pass.

/// What kind of panic a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap()` on an Option/Result.
    Unwrap,
    /// `.expect("...")` on an Option/Result.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `xs[i]` / `&xs[a..b]` index or slice expression.
    Index,
}

impl PanicKind {
    /// Short display form used in diagnostics.
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`",
            PanicKind::Expect => "`.expect(...)`",
            PanicKind::PanicMacro => "panic-family macro",
            PanicKind::Index => "index/slice expression",
        }
    }

    /// The flow-pass code that gates this kind.
    pub fn code(self) -> &'static str {
        match self {
            PanicKind::Index => "R002",
            _ => "R001",
        }
    }
}

/// One potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What can panic.
    pub kind: PanicKind,
    /// 1-based source line.
    pub line: usize,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// `helper(...)` — a free function in scope.
    Plain(String),
    /// `recv.method(...)` — resolved by method name workspace-wide.
    Method(String),
    /// `Type::method(...)` / `module::func(...)` — last two path segments.
    Path(String, String),
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The callee as written.
    pub callee: Callee,
    /// 1-based source line.
    pub line: usize,
    /// Number of arguments when the argument list closes within the
    /// scanned window; `None` when unknown (keeps resolution
    /// conservative — unknown arity never filters an edge).
    pub args: Option<usize>,
}

/// One lock acquisition (`.lock()` / `.read()` / `.write()`).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Receiver expression (`self.buckets`).
    pub receiver: String,
    /// Which acquisition method.
    pub op: &'static str,
    /// 1-based source line.
    pub line: usize,
}

/// Summary of one function definition.
#[derive(Debug, Clone)]
pub struct FnSummary {
    /// Crate the file belongs to (directory under `crates/`, or `root`).
    pub crate_name: String,
    /// Path as given to [`summarize_source`].
    pub file: String,
    /// Surrounding `impl`/`trait` type, when any.
    pub impl_type: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `pub fn` (not `pub(crate)`) — the externally callable surface.
    pub is_pub: bool,
    /// Non-`self` parameter count, when the signature parsed cleanly.
    pub params: Option<usize>,
    /// Every call site in the body.
    pub calls: Vec<CallSite>,
    /// Every non-suppressed panic site in the body.
    pub panics: Vec<PanicSite>,
    /// Every lock acquisition in the body.
    pub locks: Vec<LockSite>,
    /// Lines carrying a `mp-flow: allow(...)` with no justification.
    pub bad_allows: Vec<usize>,
}

impl FnSummary {
    /// `crate::Type::name` / `crate::name` — how diagnostics render it.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{}::{}::{}", self.crate_name, t, self.name),
            None => format!("{}::{}", self.crate_name, self.name),
        }
    }
}

const ALLOW_MARK: &str = "mp-flow: allow(";

/// Blank string literals, char literals, and comments with spaces,
/// preserving every byte offset and newline. The output is what all
/// structural scanning reads.
pub fn mask_source(src: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        Block(u32),
        Str,
        RawStr(usize),
    }
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    out.push(b' ');
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::Block(1);
                    out.push(b' ');
                } else if c == b'"' {
                    st = St::Str;
                    out.push(b'"');
                } else if c == b'r' && !ident_byte(b.get(i.wrapping_sub(1)).copied()) {
                    // r"..." / r#"..."# raw string.
                    let mut j = i + 1;
                    let mut hashes = 0;
                    while b.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&b'"') {
                        out.push(b'r');
                        out.extend(std::iter::repeat_n(b'#', hashes));
                        out.push(b'"');
                        i = j;
                        st = St::RawStr(hashes);
                    } else {
                        out.push(c);
                    }
                } else if c == b'\'' {
                    // Char literal vs lifetime: 'x' / '\n' close with a
                    // quote; 'a (lifetime) does not.
                    if b.get(i + 1) == Some(&b'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < b.len() && b[j] != b'\'' {
                            j += 1;
                        }
                        out.push(b'\'');
                        out.extend(std::iter::repeat_n(b' ', j.saturating_sub(i + 1)));
                        if j < b.len() {
                            out.push(b'\'');
                        }
                        i = j;
                    } else if b.get(i + 2) == Some(&b'\'') {
                        out.extend_from_slice(b"'  ");
                        i += 2;
                    } else {
                        out.push(c); // lifetime
                    }
                } else {
                    out.push(c);
                }
            }
            St::LineComment => {
                if c == b'\n' {
                    st = St::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
            }
            St::Block(d) => {
                if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    out.extend_from_slice(b"  ");
                    i += 1;
                    st = if d == 1 { St::Code } else { St::Block(d - 1) };
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    out.extend_from_slice(b"  ");
                    i += 1;
                    st = St::Block(d + 1);
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::Str => {
                if c == b'\\' {
                    out.extend_from_slice(b"  ");
                    i += 1;
                    if b.get(i) == Some(&b'\n') {
                        // Line-continuation escape: keep the newline.
                        out.pop();
                        out.push(b'\n');
                    }
                } else if c == b'"' {
                    out.push(b'"');
                    st = St::Code;
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
            St::RawStr(hashes) => {
                if c == b'"' {
                    let close = (0..hashes).all(|k| b.get(i + 1 + k) == Some(&b'#'));
                    if close {
                        out.push(b'"');
                        out.extend(std::iter::repeat_n(b'#', hashes));
                        i += hashes;
                        st = St::Code;
                    } else {
                        out.push(b' ');
                    }
                } else {
                    out.push(if c == b'\n' { b'\n' } else { b' ' });
                }
            }
        }
        i += 1;
    }
    String::from_utf8(out).unwrap_or_default()
}

fn ident_byte(c: Option<u8>) -> bool {
    c.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// `allow(...)` codes named on a raw line, plus whether a justification
/// follows the closing paren.
fn flow_allows(raw: &str) -> (Vec<String>, bool) {
    let Some(start) = raw.find(ALLOW_MARK) else {
        return (Vec::new(), true);
    };
    let rest = &raw[start + ALLOW_MARK.len()..];
    let Some(end) = rest.find(')') else {
        return (Vec::new(), true);
    };
    let codes = rest[..end]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    let justification = rest[end + 1..]
        .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '-' | ':' | '.' | ','));
    (codes, justification.chars().count() >= 8)
}

/// The fn-level suppression line for a function whose signature sits on
/// 1-based `fn_line`: the signature line itself, or a pure comment line
/// directly above it. Returns the chosen line and its 1-based number.
fn fn_allow_context<'a>(raw_lines: &[&'a str], fn_line: usize) -> (&'a str, usize) {
    let sig = raw_lines
        .get(fn_line.wrapping_sub(1))
        .copied()
        .unwrap_or("");
    if !sig.contains(ALLOW_MARK) && fn_line >= 2 {
        let above = raw_lines.get(fn_line - 2).copied().unwrap_or("");
        if above.trim_start().starts_with("//") && above.contains(ALLOW_MARK) {
            return (above, fn_line - 1);
        }
    }
    (sig, fn_line)
}

/// Crate name from a workspace-relative path (`crates/mapi/src/rest.rs`
/// → `mapi`; `src/lib.rs` → `root`).
pub fn crate_of(path: &str) -> String {
    let norm = path.replace('\\', "/");
    let parts: Vec<&str> = norm.split('/').filter(|s| !s.is_empty()).collect();
    match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        ["src", ..] => "root".to_string(),
        [one] => {
            let _ = one;
            "root".to_string()
        }
        [first, ..] => (*first).to_string(),
        [] => "root".to_string(),
    }
}

/// Rust keywords that look like plain calls (`if (x)`, `matches!`-free).
const KEYWORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "let", "as", "in", "move", "ref", "mut",
    "impl", "where", "unsafe", "dyn", "else", "use", "pub", "struct", "enum", "trait", "type",
    "const", "static", "break", "continue", "await", "async", "crate", "super", "self", "Self",
    "box",
];

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Parse one source file into function summaries. Test code
/// (`#[cfg(test)]` modules, `#[test]` functions) is skipped entirely.
pub fn summarize_source(path: &str, source: &str) -> Vec<FnSummary> {
    let crate_name = crate_of(path);
    let masked = mask_source(source);
    let masked_lines: Vec<&str> = masked.lines().collect();
    let raw_lines: Vec<&str> = source.lines().collect();

    let mut out: Vec<FnSummary> = Vec::new();
    let mut depth: i64 = 0;
    // (close_when_below, type name) for impl/trait blocks.
    let mut impl_stack: Vec<(i64, String)> = Vec::new();
    // Innermost-first open function indexes with their close depths.
    let mut fn_stack: Vec<(i64, usize)> = Vec::new();
    // Skip test scopes: pop when depth drops below.
    let mut skip_stack: Vec<i64> = Vec::new();
    let mut pending_attrs: Vec<String> = Vec::new();
    // Multiline signature accumulation: (text, start line, is_test, fn-line allows).
    let mut sig: Option<(String, usize, bool)> = None;

    for (idx, mline) in masked_lines.iter().enumerate() {
        let lineno = idx + 1;
        let trimmed = mline.trim();
        let opens = mline.matches(['{', '}']).count() as i64; // placeholder, replaced below
        let _ = opens;
        let line_opens = mline.matches('{').count() as i64;
        let line_closes = mline.matches('}').count() as i64;
        let depth_after = depth + line_opens - line_closes;

        if let Some(skip_below) = skip_stack.last().copied() {
            if depth_after < skip_below {
                skip_stack.pop();
            }
            depth = depth_after;
            continue;
        }

        if let Some((text, start, is_test)) = sig.take() {
            // Continue a multiline signature until its body opens.
            let mut text = text;
            text.push(' ');
            text.push_str(trimmed);
            if let Some(b) = text.find('{') {
                finish_fn(
                    &crate_name,
                    path,
                    &text[..b],
                    start,
                    is_test,
                    &impl_stack,
                    &mut out,
                    &mut fn_stack,
                    &mut skip_stack,
                    depth + 1,
                );
                // Scan the remainder of this line as body content.
                if !is_test {
                    if let Some(cut) = mline.find('{') {
                        scan_body_segment(
                            &mline[cut..],
                            cut,
                            raw_lines.get(idx).copied().unwrap_or(""),
                            raw_lines.get(idx.wrapping_sub(1)).copied().unwrap_or(""),
                            "",
                            0,
                            lineno,
                            &masked_lines,
                            idx,
                            &mut out,
                            &fn_stack,
                        );
                    }
                }
            } else if text.contains(';') {
                // Trait method declaration / extern: no body.
            } else {
                sig = Some((text, start, is_test));
            }
            depth = depth_after;
            continue;
        }

        if trimmed.starts_with("#[") {
            pending_attrs.push(trimmed.to_string());
            depth = depth_after;
            continue;
        }
        if trimmed.is_empty() {
            depth = depth_after;
            continue;
        }

        let attrs = std::mem::take(&mut pending_attrs);
        let cfg_test = attrs
            .iter()
            .any(|a| a.contains("cfg(test)") || a.contains("cfg(all(test"));
        let is_test_fn = cfg_test || attrs.iter().any(|a| a.starts_with("#[test]"));

        // Test module: skip its whole extent.
        if cfg_test && (trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ")) {
            if mline.contains('{') {
                skip_stack.push(depth + 1);
            }
            depth = depth_after;
            continue;
        }

        // impl / trait block header.
        if trimmed.starts_with("impl")
            || trimmed.starts_with("trait ")
            || trimmed.starts_with("pub trait ")
        {
            if let Some(t) = impl_type_of(trimmed) {
                if mline.contains('{') {
                    if cfg_test {
                        skip_stack.push(depth + 1);
                    } else {
                        impl_stack.push((depth + 1, t));
                    }
                    depth = depth_after;
                    continue;
                }
            }
        }

        // fn signature?
        if let Some(fn_pos) = fn_keyword_pos(trimmed) {
            let _ = fn_pos;
            if let Some(b) = mline.find('{') {
                finish_fn(
                    &crate_name,
                    path,
                    trimmed.split('{').next().unwrap_or(trimmed),
                    lineno,
                    is_test_fn,
                    &impl_stack,
                    &mut out,
                    &mut fn_stack,
                    &mut skip_stack,
                    depth + 1,
                );
                if !is_test_fn {
                    let (fn_raw, fn_raw_line) = fn_allow_context(&raw_lines, lineno);
                    scan_body_segment(
                        &mline[b..],
                        b,
                        raw_lines.get(idx).copied().unwrap_or(""),
                        raw_lines.get(idx.wrapping_sub(1)).copied().unwrap_or(""),
                        fn_raw,
                        fn_raw_line,
                        lineno,
                        &masked_lines,
                        idx,
                        &mut out,
                        &fn_stack,
                    );
                }
            } else if trimmed.contains(';') {
                // declaration only
            } else {
                sig = Some((trimmed.to_string(), lineno, is_test_fn));
            }
            depth = depth_after;
            continue;
        }

        // Ordinary body line.
        if let Some(&(_, fi)) = fn_stack.last() {
            let fn_line = out[fi].line;
            let (fn_raw, fn_raw_line) = fn_allow_context(&raw_lines, fn_line);
            scan_body_segment(
                mline,
                0,
                raw_lines.get(idx).copied().unwrap_or(""),
                raw_lines.get(idx.wrapping_sub(1)).copied().unwrap_or(""),
                fn_raw,
                fn_raw_line,
                lineno,
                &masked_lines,
                idx,
                &mut out,
                &fn_stack,
            );
        }

        depth = depth_after;
        while fn_stack.last().is_some_and(|&(d, _)| depth_after < d) {
            fn_stack.pop();
        }
        while impl_stack.last().is_some_and(|&(d, _)| depth_after < d) {
            impl_stack.pop();
        }
        continue;
    }

    out.retain(|f| !f.name.is_empty());
    out
}

/// Position of the `fn ` keyword when the line is a function signature
/// (possibly behind `pub` / `async` / `const` / `unsafe` qualifiers).
fn fn_keyword_pos(trimmed: &str) -> Option<usize> {
    let mut rest = trimmed;
    let mut offset = 0;
    loop {
        if let Some(r) = rest.strip_prefix("fn ") {
            let _ = r;
            return Some(offset);
        }
        let qualifiers = ["pub", "async", "const", "unsafe", "extern"];
        let mut advanced = false;
        for q in qualifiers {
            if let Some(r) = rest.strip_prefix(q) {
                // `pub(crate)` / `pub(super)` visibility scope.
                let r = if q == "pub" && r.starts_with('(') {
                    match r.find(')') {
                        Some(p) => &r[p + 1..],
                        None => return None,
                    }
                } else {
                    r
                };
                let r2 = r.trim_start();
                offset += rest.len() - r2.len();
                rest = r2;
                advanced = true;
                break;
            }
        }
        if !advanced {
            return None;
        }
    }
}

/// The type an `impl`/`trait` header introduces.
fn impl_type_of(trimmed: &str) -> Option<String> {
    let mut rest = trimmed;
    for p in ["impl", "pub trait", "trait"] {
        if let Some(r) = rest.strip_prefix(p) {
            rest = r;
            break;
        }
    }
    // Skip generic parameters `<...>` (tolerating `->` inside bounds).
    let rest = skip_generics(rest.trim_start());
    // `Trait for Type` → the Type.
    let rest = match rest.find(" for ") {
        Some(i) => &rest[i + 5..],
        None => rest,
    };
    let name: String = rest
        .trim_start()
        .chars()
        .take_while(|&c| is_ident_char(c) || c == ':')
        .collect();
    let last = name.rsplit("::").next().unwrap_or("").to_string();
    if last.is_empty() {
        None
    } else {
        Some(last)
    }
}

fn skip_generics(s: &str) -> &str {
    if !s.starts_with('<') {
        return s;
    }
    let b = s.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'<' => depth += 1,
            b'>' => {
                if i > 0 && b[i - 1] == b'-' {
                    // `->` inside an Fn bound
                } else {
                    depth -= 1;
                    if depth == 0 {
                        return &s[i + 1..];
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    s
}

/// Finalize a function from its (masked, body-less) signature text.
#[allow(clippy::too_many_arguments)]
fn finish_fn(
    crate_name: &str,
    path: &str,
    sig_text: &str,
    start_line: usize,
    is_test: bool,
    impl_stack: &[(i64, String)],
    out: &mut Vec<FnSummary>,
    fn_stack: &mut Vec<(i64, usize)>,
    skip_stack: &mut Vec<i64>,
    body_depth: i64,
) {
    if is_test {
        skip_stack.push(body_depth);
        return;
    }
    let trimmed = sig_text.trim();
    let Some(fp) = fn_keyword_pos(trimmed) else {
        return;
    };
    let after = &trimmed[fp + 3..];
    let name: String = after.chars().take_while(|&c| is_ident_char(c)).collect();
    if name.is_empty() {
        return;
    }
    let is_pub = trimmed.starts_with("pub fn")
        || trimmed.starts_with("pub async fn")
        || trimmed.starts_with("pub const fn")
        || trimmed.starts_with("pub unsafe fn");
    // Parameter list: first `(` after the name (skipping generics).
    let after_name = skip_generics(after[name.len()..].trim_start());
    let params = after_name.strip_prefix('(').map(|plist| {
        let inner = match matching_paren(plist) {
            Some(end) => &plist[..end],
            None => plist,
        };
        let args = count_top_level_commas(inner);
        let has_self = inner
            .split(',')
            .next()
            .map(|first| {
                let f = first.trim();
                f == "self"
                    || f == "&self"
                    || f == "&mut self"
                    || f.starts_with("self:")
                    || f.starts_with("mut self")
                    || f.starts_with("&'") && f.ends_with("self")
            })
            .unwrap_or(false);
        args.saturating_sub(usize::from(has_self))
    });
    out.push(FnSummary {
        crate_name: crate_name.to_string(),
        file: path.to_string(),
        impl_type: impl_stack.last().map(|(_, t)| t.clone()),
        name,
        line: start_line,
        is_pub,
        params,
        calls: Vec::new(),
        panics: Vec::new(),
        locks: Vec::new(),
        bad_allows: Vec::new(),
    });
    fn_stack.push((body_depth, out.len() - 1));
}

/// Offset of the `)` matching an implicit `(` already consumed.
fn matching_paren(s: &str) -> Option<usize> {
    let mut depth = 1i32;
    for (i, c) in s.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Top-level item count of a comma-separated list (0 for empty,
/// trailing comma tolerated).
fn count_top_level_commas(s: &str) -> usize {
    let t = s.trim().trim_end_matches(',').trim_end();
    if t.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut n = 1usize;
    let b = t.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'(' | b'[' | b'{' | b'<' => depth += 1,
            b'>' if i > 0 && b[i - 1] == b'-' => {}
            b')' | b']' | b'}' | b'>' => depth -= 1,
            b',' if depth == 0 => n += 1,
            _ => {}
        }
    }
    n
}

/// Scan one masked body segment for calls, panics, indexes, and locks,
/// attributing findings to the innermost open function.
#[allow(clippy::too_many_arguments)]
fn scan_body_segment(
    mseg: &str,
    seg_off: usize,
    raw_line: &str,
    raw_prev: &str,
    fn_raw: &str,
    fn_raw_line: usize,
    lineno: usize,
    masked_lines: &[&str],
    line_idx: usize,
    out: &mut [FnSummary],
    fn_stack: &[(i64, usize)],
) {
    let Some(&(_, fi)) = fn_stack.last() else {
        return;
    };
    // Suppression context: this line, the line above, or the fn-level
    // line (the signature line, or a comment line directly above it).
    let (mut allowed, mut ok) = flow_allows(raw_line);
    for src in [raw_prev, fn_raw] {
        let (more, j) = flow_allows(src);
        allowed.extend(more);
        ok &= j;
    }
    if !ok && raw_line.contains(ALLOW_MARK) {
        // Only charge the site whose own line carries the bad allow.
        let (_, self_ok) = flow_allows(raw_line);
        if !self_ok {
            out[fi].bad_allows.push(lineno);
        }
    } else if raw_prev.contains(ALLOW_MARK) && !flow_allows(raw_prev).1 {
        out[fi].bad_allows.push(lineno - 1);
    } else if fn_raw.contains(ALLOW_MARK) && !flow_allows(fn_raw).1 {
        out[fi].bad_allows.push(fn_raw_line);
    }
    let is_allowed = |code: &str| allowed.iter().any(|a| a == code);

    let bytes = mseg.as_bytes();

    // --- panic sites: .unwrap() / .expect( ---
    for (pat, kind) in [
        (".unwrap()", PanicKind::Unwrap),
        (".expect(", PanicKind::Expect),
    ] {
        let mut from = 0;
        while let Some(p) = mseg[from..].find(pat) {
            let pos = from + p;
            from = pos + pat.len();
            // `.expect(` must not match `.expect_err(` (it cannot: the
            // `(` differs), but `.unwrap()` must not match `.unwrap_or()`
            // (it cannot either: `_or` breaks the `()`). Direct push.
            if !is_allowed(kind.code()) {
                out[fi].panics.push(PanicSite { kind, line: lineno });
            }
        }
    }
    // --- panic macros ---
    for m in PANIC_MACROS {
        let pat = format!("{m}!");
        let mut from = 0;
        while let Some(p) = mseg[from..].find(&pat) {
            let pos = from + p;
            from = pos + pat.len();
            if pos > 0 && ident_byte(Some(bytes[pos - 1])) {
                continue; // debug_unreachable! etc.
            }
            if !is_allowed("R001") {
                out[fi].panics.push(PanicSite {
                    kind: PanicKind::PanicMacro,
                    line: lineno,
                });
            }
        }
    }
    // --- index/slice sites ---
    for (pos, c) in mseg.char_indices() {
        if c != '[' {
            continue;
        }
        let prev = mseg[..pos].chars().next_back();
        let indexable = prev.is_some_and(|p| is_ident_char(p) || p == ']' || p == ')');
        if !indexable {
            continue;
        }
        // `doc["key"]` — serde_json object lookup, non-panicking.
        let next = mseg[pos + 1..].chars().find(|c| !c.is_whitespace());
        if next == Some('"') {
            continue;
        }
        // Attribute-ish or empty `[]` (never panics).
        if next == Some(']') {
            continue;
        }
        // Full-range `[..]` (RangeFull) cannot panic.
        if let Some(close) = mseg[pos + 1..].find(']') {
            if mseg[pos + 1..pos + 1 + close].trim() == ".." {
                continue;
            }
        }
        if !is_allowed("R002") {
            out[fi].panics.push(PanicSite {
                kind: PanicKind::Index,
                line: lineno,
            });
        }
    }
    // --- lock sites ---
    for op in ["lock", "read", "write"] {
        let pat = format!(".{op}()");
        let mut from = 0;
        while let Some(p) = mseg[from..].find(&pat) {
            let pos = from + p;
            from = pos + pat.len();
            let receiver = receiver_ending_at(mseg, pos);
            if !receiver.is_empty() {
                out[fi].locks.push(LockSite {
                    receiver,
                    op: match op {
                        "lock" => "lock",
                        "read" => "read",
                        _ => "write",
                    },
                    line: lineno,
                });
            }
        }
    }
    // --- call sites ---
    let mut iter = mseg.char_indices().peekable();
    while let Some((pos, c)) = iter.next() {
        if !(c.is_alphabetic() || c == '_') {
            continue;
        }
        if pos > 0 && is_ident_char(mseg[..pos].chars().next_back().unwrap_or(' ')) {
            continue; // mid-identifier
        }
        // Collect the identifier.
        let ident: String = mseg[pos..]
            .chars()
            .take_while(|&c| is_ident_char(c))
            .collect();
        let after = pos + ident.len();
        // Advance the iterator past it.
        while iter.peek().is_some_and(|&(i, _)| i < after) {
            iter.next();
        }
        let mut rest = &mseg[after..];
        // Turbofish `::<T>` between name and `(`.
        if let Some(r) = rest.strip_prefix("::<") {
            match r.find('>') {
                Some(g) => rest = &r[g + 1..],
                None => continue,
            }
        }
        if !rest.starts_with('(') {
            continue;
        }
        if KEYWORDS.contains(&ident.as_str()) {
            continue;
        }
        let before = &mseg[..pos];
        let prev_char = before.trim_end().chars().next_back();
        // Macro invocation handled above; `name !(` is not a call.
        if rest.starts_with("(") && before.ends_with('!') {
            continue;
        }
        let args = call_args(
            masked_lines,
            line_idx,
            seg_off + after + (mseg[after..].len() - rest.len()),
        );
        let callee = if before.ends_with('.') {
            // Skip closure-taking adapters: first arg starts a closure.
            let inner = rest[1..].trim_start();
            if inner.starts_with('|') || inner.starts_with("move ") {
                continue;
            }
            Callee::Method(ident)
        } else if before.ends_with("::") {
            let qual = receiver_ending_at(mseg, pos.saturating_sub(2));
            let last = qual.rsplit("::").next().unwrap_or("").to_string();
            if last.is_empty() {
                continue;
            }
            Callee::Path(last, ident)
        } else if prev_char.is_some_and(|p| p == '.') {
            Callee::Method(ident)
        } else {
            // Uppercase-initial plain names are tuple constructors /
            // enum variants (Some, Ok, Vec), not workspace functions.
            if ident.chars().next().is_some_and(|c| c.is_uppercase()) {
                continue;
            }
            Callee::Plain(ident)
        };
        out[fi].calls.push(CallSite {
            callee,
            line: lineno,
            args,
        });
    }
}

/// The dotted/path receiver expression ending at byte `pos`.
fn receiver_ending_at(s: &str, pos: usize) -> String {
    let bytes = s.as_bytes();
    let mut start = pos;
    while start > 0 {
        let c = bytes[start - 1] as char;
        if is_ident_char(c) || c == '.' || c == ':' {
            start -= 1;
        } else {
            break;
        }
    }
    s[start..pos].trim_matches(['.', ':']).to_string()
}

/// Count arguments of the call whose `(` sits at `col` of line
/// `line_idx`, scanning up to 40 lines ahead in the masked text.
fn call_args(masked_lines: &[&str], line_idx: usize, col: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    // A depth-1 comma immediately before the closing `)` is a trailing
    // comma (idiomatic in multi-line calls), not an extra argument.
    let mut trailing = false;
    for (li, line) in masked_lines.iter().enumerate().skip(line_idx).take(40) {
        let seg: &str = if li == line_idx {
            if col >= line.len() {
                return None;
            }
            &line[col..]
        } else {
            line
        };
        for c in seg.chars() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        let args = if any { commas + 1 } else { 0 };
                        return Some(args.saturating_sub(usize::from(trailing)));
                    }
                }
                ',' if depth == 1 => {
                    commas += 1;
                    trailing = true;
                }
                c if depth >= 1 && !c.is_whitespace() => {
                    any = true;
                    trailing = false;
                }
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_blanks_strings_and_comments() {
        let src = "let s = \"{ not a brace }\"; // { comment }\nlet c = '{';\n";
        let m = mask_source(src);
        assert!(!m.contains("not a brace"));
        assert!(!m.contains("comment"));
        assert_eq!(m.matches('{').count(), 0, "{m}");
        assert_eq!(m.len(), src.len(), "masking preserves byte offsets");
    }

    #[test]
    fn mask_handles_multiline_and_escaped_strings() {
        let src = "let s = \"line one \\\n  line {two}\";\nlet x = 1;\n";
        let m = mask_source(src);
        assert!(!m.contains("two"));
        assert!(m.contains("let x = 1;"), "{m}");
        assert_eq!(m.lines().count(), src.lines().count());
    }

    #[test]
    fn summary_captures_calls_and_panics() {
        let src = "\
pub fn handler(input: &str) -> usize {
    let v = helper(input);
    let n = v.first().unwrap();
    Filter::parse(input);
    *n
}
fn helper(s: &str) -> Vec<usize> { vec![s.len()] }
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert_eq!(fns.len(), 2, "{fns:?}");
        let h = &fns[0];
        assert_eq!(h.name, "handler");
        assert!(h.is_pub);
        assert_eq!(h.params, Some(1));
        assert!(h
            .calls
            .iter()
            .any(|c| c.callee == Callee::Plain("helper".into())));
        assert!(h
            .calls
            .iter()
            .any(|c| c.callee == Callee::Path("Filter".into(), "parse".into())));
        assert_eq!(h.panics.len(), 1);
        assert_eq!(h.panics[0].kind, PanicKind::Unwrap);
        assert!(!fns[1].is_pub);
    }

    #[test]
    fn multiline_call_trailing_comma_is_not_an_argument() {
        let src = "\
impl Store {
    fn save(&self, op: &Op) {
        self.commit(
            &[op.clone()],
            |db| db.apply(op),
        );
        self.commit(&[op.clone()], |db| db.apply(op));
    }
    fn commit(&self, ops: &[Op], f: impl FnOnce(&Db)) {}
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        let commits: Vec<_> = fns[0]
            .calls
            .iter()
            .filter(|c| c.callee == Callee::Method("commit".into()))
            .collect();
        assert_eq!(commits.len(), 2, "{:?}", fns[0].calls);
        assert!(
            commits.iter().all(|c| c.args == Some(2)),
            "trailing comma must not inflate arity: {commits:?}"
        );
    }

    #[test]
    fn impl_methods_get_their_type() {
        let src = "\
impl<'a> Engine<'a> {
    pub fn run(&self, q: &str) -> bool {
        self.check(q)
    }
    fn check(&self, q: &str) -> bool { !q.is_empty() }
}
impl fmt::Display for Engine<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert_eq!(fns.len(), 3, "{fns:?}");
        assert_eq!(fns[0].impl_type.as_deref(), Some("Engine"));
        assert_eq!(fns[0].params, Some(1));
        assert_eq!(fns[2].impl_type.as_deref(), Some("Engine"));
        assert!(fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Method("check".into())));
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "\
pub fn real() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
#[test]
fn standalone() { y.unwrap(); }
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert_eq!(fns.len(), 1, "{fns:?}");
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn index_sites_detected_with_json_exemption() {
        let src = "\
fn f(xs: &[u8], doc: &Value) -> u8 {
    let a = xs[0];
    let b = &xs[1..3];
    let c = doc[\"key\"].clone();
    a + b[0]
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        let idx: Vec<_> = fns[0]
            .panics
            .iter()
            .filter(|p| p.kind == PanicKind::Index)
            .collect();
        assert_eq!(idx.len(), 3, "{:?}", fns[0].panics);
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "\
fn f(x: Option<u8>) -> u8 {
    // mp-flow: allow(R001) — invariant: caller checked is_some
    x.unwrap()
}
fn g(x: Option<u8>) -> u8 {
    x.unwrap() // mp-flow: allow(R001)
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert!(fns[0].panics.is_empty(), "{:?}", fns[0].panics);
        assert!(fns[0].bad_allows.is_empty());
        // g's allow has no justification: site suppressed? No — the
        // bad allow is recorded and the site stays suppressed pending
        // the R003 diagnostic that forces a justification.
        assert!(!fns[1].bad_allows.is_empty(), "{fns:?}");
    }

    #[test]
    fn fn_level_allow_covers_body() {
        let src = "\
fn dense(xs: &[f64]) -> f64 { // mp-flow: allow(R002) — bounds established above
    xs[0] + xs[1]
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert!(
            fns[0].panics.iter().all(|p| p.kind != PanicKind::Index),
            "{:?}",
            fns[0].panics
        );
    }

    #[test]
    fn range_full_index_is_not_a_panic_site() {
        let src = "\
fn shape(v: &Vec<u8>) -> usize {
    match v[..] {
        [a] => a as usize,
        _ => v[0] as usize,
    }
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        let idx: Vec<_> = fns[0]
            .panics
            .iter()
            .filter(|p| p.kind == PanicKind::Index)
            .collect();
        // Only `v[0]` counts; `v[..]` (RangeFull) cannot panic.
        assert_eq!(idx.len(), 1, "{:?}", fns[0].panics);
    }

    #[test]
    fn fn_level_allow_on_comment_above_signature_covers_body() {
        let src = "\
// mp-flow: allow(R002) — dense kernel, dimensions fixed by construction
fn dense(xs: &[f64]) -> f64 {
    xs[0] + xs[1]
}

fn uncovered(xs: &[f64]) -> f64 {
    xs[0]
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert!(
            fns[0].panics.iter().all(|p| p.kind != PanicKind::Index),
            "{:?}",
            fns[0].panics
        );
        assert!(fns[0].bad_allows.is_empty());
        // The allow is scoped to `dense`; the next fn is still flagged.
        assert!(fns[1].panics.iter().any(|p| p.kind == PanicKind::Index));
    }

    #[test]
    fn multiline_signature_parses() {
        let src = "\
pub fn structured_query(
    &self,
    req: &Request,
    collection: &str,
) -> Response {
    self.handle(req)
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "structured_query");
        assert_eq!(fns[0].params, Some(2));
        assert!(fns[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Method("handle".into())));
    }

    #[test]
    fn closure_adapters_are_not_method_calls() {
        let src = "\
fn f(v: &[u8]) -> Option<&u8> {
    v.iter().find(|x| **x > 1)
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert!(
            !fns[0]
                .calls
                .iter()
                .any(|c| c.callee == Callee::Method("find".into())),
            "{:?}",
            fns[0].calls
        );
    }

    #[test]
    fn lock_sites_recorded() {
        let src = "\
fn f(&self) -> usize {
    let g = self.buckets.lock();
    g.len()
}
";
        let fns = summarize_source("crates/demo/src/lib.rs", src);
        assert_eq!(fns[0].locks.len(), 1);
        assert_eq!(fns[0].locks[0].receiver, "self.buckets");
        assert_eq!(fns[0].locks[0].op, "lock");
    }

    #[test]
    fn crate_name_derivation() {
        assert_eq!(crate_of("crates/mapi/src/rest.rs"), "mapi");
        assert_eq!(crate_of("src/lib.rs"), "root");
        assert_eq!(crate_of("examples/demo.rs"), "examples");
    }
}
