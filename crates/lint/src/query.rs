//! Pass 1: static analysis of Mongo-style filter documents.
//!
//! Codes:
//! - `Q000` (error): filter does not parse.
//! - `Q001` (error): type mismatch — an operand can never compare against
//!   the field's observed types (cross-type comparisons never match).
//! - `Q002` (error): always-false predicate set (contradictory bounds,
//!   conflicting equalities, empty `$in`, `$exists: false` plus a value
//!   constraint, incompatible range operand types).
//! - `Q003` (warning): unknown field, with did-you-mean suggestions against
//!   the schema and the API's field aliases.
//! - `Q004` (warning): no constrained field is indexed — the query is a full
//!   collection scan.

use std::collections::BTreeMap;

use mp_docstore::query::Predicate;
use mp_docstore::value::{cmp_values, values_equal};
use mp_docstore::Filter;
use serde_json::Value;

use crate::diagnostics::Diagnostic;
use crate::schema::{CollectionSchema, TypeSet};

/// Analyze a filter without schema context (parse + contradiction checks).
pub fn analyze_query(raw: &Value) -> Vec<Diagnostic> {
    analyze_inner(raw, None, &BTreeMap::new())
}

/// Analyze a filter against an inferred collection schema. `aliases` maps
/// user-facing alias → stored path (used for did-you-mean suggestions).
pub fn analyze_query_with_schema(
    raw: &Value,
    schema: &CollectionSchema,
    aliases: &BTreeMap<String, String>,
) -> Vec<Diagnostic> {
    analyze_inner(raw, Some(schema), aliases)
}

fn analyze_inner(
    raw: &Value,
    schema: Option<&CollectionSchema>,
    aliases: &BTreeMap<String, String>,
) -> Vec<Diagnostic> {
    let filter = match Filter::parse(raw) {
        Ok(f) => f,
        Err(e) => {
            return vec![Diagnostic::error(
                "Q000",
                "$filter",
                format!("filter does not parse: {e}"),
            )]
        }
    };
    let mut out = Vec::new();
    check_scope(&filter, "", schema, aliases, &mut out);
    if let Some(schema) = schema {
        check_index_use(&filter, schema, &mut out);
    }
    out
}

/// Analyze one conjunctive scope (a filter node plus all nested `$and`s),
/// then recurse into `$or`/`$nor` branches and `$elemMatch` sub-filters.
fn check_scope(
    filter: &Filter,
    prefix: &str,
    schema: Option<&CollectionSchema>,
    aliases: &BTreeMap<String, String>,
    out: &mut Vec<Diagnostic>,
) {
    let mut conj: BTreeMap<String, Vec<&Predicate>> = BTreeMap::new();
    let mut branches: Vec<&Filter> = Vec::new();
    collect_conjuncts(filter, prefix, &mut conj, &mut branches);

    for (path, preds) in &conj {
        if let Some(schema) = schema {
            check_field_known(path, schema, aliases, out);
            check_types(path, preds, schema, out);
        }
        check_contradictions(path, preds, out);
        for pred in preds {
            if let Predicate::ElemMatch(sub) = pred {
                check_scope(sub, &format!("{path}."), schema, aliases, out);
            }
        }
    }
    for branch in branches {
        check_scope(branch, prefix, schema, aliases, out);
    }
}

/// Flatten `filter.fields` plus nested `$and` clauses into one conjunctive
/// constraint map; collect `$or`/`$nor` branches for separate scopes.
pub(crate) fn collect_conjuncts<'f>(
    filter: &'f Filter,
    prefix: &str,
    conj: &mut BTreeMap<String, Vec<&'f Predicate>>,
    branches: &mut Vec<&'f Filter>,
) {
    for (path, preds) in &filter.fields {
        conj.entry(format!("{prefix}{path}"))
            .or_default()
            .extend(preds.iter());
    }
    for sub in &filter.and {
        collect_conjuncts(sub, prefix, conj, branches);
    }
    branches.extend(filter.or.iter());
    branches.extend(filter.nor.iter());
}

// ---------------------------------------------------------------------------
// Q003: unknown fields with did-you-mean
// ---------------------------------------------------------------------------

fn check_field_known(
    path: &str,
    schema: &CollectionSchema,
    aliases: &BTreeMap<String, String>,
    out: &mut Vec<Diagnostic>,
) {
    if schema.has_field(path) || schema.sampled == 0 {
        return;
    }
    let mut d = Diagnostic::warning(
        "Q003",
        path,
        format!(
            "field `{path}` does not appear in any sampled document of `{}`",
            schema.collection
        ),
    );
    let candidates = schema
        .fields
        .keys()
        .map(String::as_str)
        .chain(aliases.keys().map(String::as_str));
    if let Some(best) = did_you_mean(path, candidates) {
        d = d.with_suggestion(format!("did you mean `{best}`?"));
    }
    out.push(d);
}

/// Closest candidate within an edit distance of 2 (ties broken first-seen).
fn did_you_mean<'a>(path: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    let mut best: Option<(usize, &str)> = None;
    for cand in candidates {
        let d = levenshtein(path, cand, 3);
        if d <= 2 && best.map(|(bd, _)| d < bd).unwrap_or(true) {
            best = Some((d, cand));
        }
    }
    best.map(|(_, c)| c)
}

/// Bounded Levenshtein distance; returns `cap` when the distance exceeds it.
fn levenshtein(a: &str, b: &str, cap: usize) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.len().abs_diff(b.len()) >= cap {
        return cap;
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut row = Vec::with_capacity(b.len() + 1);
        let mut last = i + 1;
        row.push(last);
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let sub = prev.get(j).copied().unwrap_or(cap) + cost;
            let del = prev.get(j + 1).copied().unwrap_or(cap) + 1;
            last = sub.min(del).min(last + 1);
            row.push(last);
        }
        prev = row;
    }
    prev.last().copied().unwrap_or(cap).min(cap)
}

// ---------------------------------------------------------------------------
// Q001: type mismatches against the schema
// ---------------------------------------------------------------------------

/// The type group an operand can match: numbers compare across int/double.
fn operand_group(v: &Value) -> TypeSet {
    match TypeSet::of(v) {
        t if t.intersects(TypeSet::NUMBER) => TypeSet::NUMBER,
        t => t,
    }
}

fn check_types(
    path: &str,
    preds: &[&Predicate],
    schema: &CollectionSchema,
    out: &mut Vec<Diagnostic>,
) {
    let field = schema.types_at(path);
    if field.is_empty() {
        return; // unknown field: Q003's job
    }
    let mismatch = |op: &str, want: TypeSet, out: &mut Vec<Diagnostic>| {
        out.push(
            Diagnostic::error(
                "Q001",
                path,
                format!(
                    "`{op}` needs a {want} value but `{path}` holds {field} in `{}`",
                    schema.collection
                ),
            )
            .with_suggestion(format!("compare `{path}` against {field}")),
        );
    };
    for pred in preds {
        match pred {
            Predicate::Eq(v) | Predicate::Ne(v) => {
                let group = operand_group(v);
                if !field.intersects(group) {
                    let op = if matches!(pred, Predicate::Eq(_)) {
                        "$eq"
                    } else {
                        "$ne"
                    };
                    mismatch(op, group, out);
                }
            }
            Predicate::Gt(v) | Predicate::Gte(v) | Predicate::Lt(v) | Predicate::Lte(v) => {
                let group = operand_group(v);
                if !field.intersects(group) {
                    mismatch(range_op_name(pred), group, out);
                }
            }
            Predicate::In(vs) | Predicate::Nin(vs) => {
                if !vs.is_empty() && !vs.iter().any(|v| field.intersects(operand_group(v))) {
                    let op = if matches!(pred, Predicate::In(_)) {
                        "$in"
                    } else {
                        "$nin"
                    };
                    mismatch(
                        op,
                        vs.first().map(operand_group).unwrap_or(TypeSet::EMPTY),
                        out,
                    );
                }
            }
            Predicate::Contains(_) | Predicate::StartsWith(_) => {
                if !field.intersects(TypeSet::STRING) {
                    mismatch("$regex", TypeSet::STRING, out);
                }
            }
            Predicate::Mod(_, _) => {
                if !field.intersects(TypeSet::NUMBER) {
                    mismatch("$mod", TypeSet::NUMBER, out);
                }
            }
            Predicate::All(_) | Predicate::Size(_) | Predicate::ElemMatch(_) => {
                if !field.intersects(TypeSet::ARRAY) {
                    let op = match pred {
                        Predicate::All(_) => "$all",
                        Predicate::Size(_) => "$size",
                        _ => "$elemMatch",
                    };
                    mismatch(op, TypeSet::ARRAY, out);
                }
            }
            Predicate::Type(name) => {
                const KNOWN: [&str; 8] = [
                    "null", "bool", "int", "double", "number", "string", "array", "object",
                ];
                if !KNOWN.contains(&name.as_str()) {
                    out.push(Diagnostic::error(
                        "Q001",
                        path,
                        format!("`$type` operand `{name}` is not a known type name"),
                    ));
                }
            }
            Predicate::Exists(_) | Predicate::Not(_) => {}
        }
    }
}

fn range_op_name(p: &Predicate) -> &'static str {
    match p {
        Predicate::Gt(_) => "$gt",
        Predicate::Gte(_) => "$gte",
        Predicate::Lt(_) => "$lt",
        Predicate::Lte(_) => "$lte",
        _ => "$cmp",
    }
}

// ---------------------------------------------------------------------------
// Q002: always-false predicate sets
// ---------------------------------------------------------------------------

fn check_contradictions(path: &str, preds: &[&Predicate], out: &mut Vec<Diagnostic>) {
    let mut eq: Option<&Value> = None;
    let mut lo: Option<(&Value, bool)> = None; // tightest lower bound
    let mut hi: Option<(&Value, bool)> = None; // tightest upper bound
    let mut size: Option<usize> = None;
    let mut exists_false = false;
    let mut value_constrained = false;

    let push = |msg: String, out: &mut Vec<Diagnostic>| {
        out.push(
            Diagnostic::error("Q002", path, msg)
                .with_suggestion("this predicate set can never match any document"),
        );
    };

    for pred in preds {
        if !matches!(pred, Predicate::Exists(_)) {
            value_constrained = true;
        }
        match pred {
            Predicate::Eq(v) => {
                if let Some(prev) = eq {
                    if !values_equal(prev, v) {
                        push(format!("conflicting equalities: {prev} and {v}"), out);
                    }
                }
                eq = Some(v);
            }
            Predicate::Gt(v) => tighten(&mut lo, v, false, true),
            Predicate::Gte(v) => tighten(&mut lo, v, true, true),
            Predicate::Lt(v) => tighten(&mut hi, v, false, false),
            Predicate::Lte(v) => tighten(&mut hi, v, true, false),
            Predicate::In(vs) if vs.is_empty() => {
                push("`$in: []` matches nothing".to_string(), out);
            }
            Predicate::Size(n) => {
                if let Some(prev) = size {
                    if prev != *n {
                        push(format!("conflicting `$size`: {prev} and {n}"), out);
                    }
                }
                size = Some(*n);
            }
            Predicate::Exists(false) => exists_false = true,
            _ => {}
        }
    }

    if let (Some((l, li)), Some((h, hi_inc))) = (lo, hi) {
        if !comparable(l, h) {
            push(
                format!("range bounds {l} and {h} have incompatible types"),
                out,
            );
        } else {
            let ord = cmp_values(l, h);
            let empty = match ord {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => !(li && hi_inc),
                std::cmp::Ordering::Less => false,
            };
            if empty {
                push(
                    format!("empty range: lower bound {l} excludes upper bound {h}"),
                    out,
                );
            }
        }
    }
    if let Some(v) = eq {
        for (bound, is_lower, inclusive) in [
            lo.map(|(b, i)| (b, true, i)),
            hi.map(|(b, i)| (b, false, i)),
        ]
        .into_iter()
        .flatten()
        {
            if !comparable(v, bound) {
                push(
                    format!("equality {v} can never satisfy bound {bound} (different types)"),
                    out,
                );
                continue;
            }
            let ord = cmp_values(v, bound);
            let violates = match (is_lower, inclusive) {
                (true, true) => ord == std::cmp::Ordering::Less,
                (true, false) => ord != std::cmp::Ordering::Greater,
                (false, true) => ord == std::cmp::Ordering::Greater,
                (false, false) => ord != std::cmp::Ordering::Less,
            };
            if violates {
                push(format!("equality {v} lies outside the required range"), out);
            }
        }
    }
    if exists_false && value_constrained {
        push(
            "`$exists: false` combined with a value constraint".to_string(),
            out,
        );
    }
}

/// Keep the tighter of two bounds (`is_lower` picks max for lower bounds,
/// min for upper); incomparable mixed-type bounds are reported elsewhere, so
/// keep the first.
fn tighten<'v>(
    slot: &mut Option<(&'v Value, bool)>,
    v: &'v Value,
    inclusive: bool,
    is_lower: bool,
) {
    match slot {
        None => *slot = Some((v, inclusive)),
        Some((cur, _)) if comparable(cur, v) => {
            let ord = cmp_values(v, cur);
            let replace = if is_lower {
                ord == std::cmp::Ordering::Greater
            } else {
                ord == std::cmp::Ordering::Less
            };
            if replace {
                *slot = Some((v, inclusive));
            }
        }
        Some(_) => {}
    }
}

/// Values the store's ordering actually ranks against each other.
fn comparable(a: &Value, b: &Value) -> bool {
    operand_group(a) == operand_group(b)
}

// ---------------------------------------------------------------------------
// Q004: unindexed scans
// ---------------------------------------------------------------------------

/// Warn when the root conjunctive scope constrains fields but none of them
/// is indexed — the planner will walk every document.
fn check_index_use(filter: &Filter, schema: &CollectionSchema, out: &mut Vec<Diagnostic>) {
    // An empty collection (or a typo'd database path resolving to one)
    // costs nothing to scan; warning about it would only mislead.
    if schema.total_docs == 0 {
        return;
    }
    let mut conj: BTreeMap<String, Vec<&Predicate>> = BTreeMap::new();
    let mut branches = Vec::new();
    collect_conjuncts(filter, "", &mut conj, &mut branches);

    let driver_paths: Vec<&String> = conj
        .iter()
        .filter(|(_, preds)| {
            preds.iter().any(|p| {
                matches!(
                    p,
                    Predicate::Eq(_)
                        | Predicate::In(_)
                        | Predicate::Gt(_)
                        | Predicate::Gte(_)
                        | Predicate::Lt(_)
                        | Predicate::Lte(_)
                )
            })
        })
        .map(|(path, _)| path)
        .collect();
    let Some(first_path) = driver_paths.first() else {
        return;
    };
    if driver_paths.iter().any(|p| schema.is_indexed(p)) {
        return;
    }
    let listed = driver_paths
        .iter()
        .map(|p| format!("`{p}`"))
        .collect::<Vec<_>>()
        .join(", ");
    out.push(
        Diagnostic::warning(
            "Q004",
            first_path.as_str(),
            format!(
                "no index covers {listed}; this scans all {} documents of `{}`",
                schema.total_docs, schema.collection
            ),
        )
        .with_suggestion(format!(
            "create_index(\"{first_path}\") would serve this query"
        )),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::{has_errors, Severity};
    use serde_json::json;

    fn schema() -> CollectionSchema {
        CollectionSchema {
            sampled: 8,
            total_docs: 8,
            ..CollectionSchema::with_fields(
                "tasks",
                [
                    ("chemsys", TypeSet::STRING),
                    ("nsites", TypeSet::INT),
                    ("band_gap", TypeSet::DOUBLE),
                    ("elements", TypeSet::ARRAY.union(TypeSet::STRING)),
                    ("output.energy", TypeSet::DOUBLE),
                ],
                ["chemsys"],
            )
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn q000_unparseable_filter() {
        let diags = analyze_query(&json!({"a": {"$frobnicate": 1}}));
        assert_eq!(codes(&diags), vec!["Q000"]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn q001_type_mismatch_range_on_string_field() {
        let diags =
            analyze_query_with_schema(&json!({"chemsys": {"$gt": 5}}), &schema(), &BTreeMap::new());
        assert!(codes(&diags).contains(&"Q001"), "{diags:?}");
        assert!(has_errors(&diags));
    }

    #[test]
    fn q001_equality_against_wrong_type() {
        let diags =
            analyze_query_with_schema(&json!({"nsites": "two"}), &schema(), &BTreeMap::new());
        assert!(codes(&diags).contains(&"Q001"), "{diags:?}");
    }

    #[test]
    fn q001_number_matches_int_or_double() {
        // 2 vs a double field and 2.0 vs an int field are both fine: the
        // store compares numbers across representations.
        let ok = analyze_query_with_schema(
            &json!({"band_gap": 2, "nsites": {"$lte": 4.0}}),
            &schema(),
            &BTreeMap::new(),
        );
        assert!(!ok.iter().any(|d| d.code == "Q001"), "{ok:?}");
    }

    #[test]
    fn q002_contradictory_bounds() {
        let diags = analyze_query(&json!({"n": {"$gt": 5, "$lt": 3}}));
        assert_eq!(codes(&diags), vec!["Q002"]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn q002_exclusive_equal_bounds() {
        let diags = analyze_query(&json!({"n": {"$gt": 5, "$lt": 5}}));
        assert_eq!(codes(&diags), vec!["Q002"]);
        // But an inclusive pair is satisfiable.
        assert!(analyze_query(&json!({"n": {"$gte": 5, "$lte": 5}})).is_empty());
    }

    #[test]
    fn q002_empty_in_and_equality_outside_range() {
        assert_eq!(
            codes(&analyze_query(&json!({"n": {"$in": []}}))),
            vec!["Q002"]
        );
        assert_eq!(
            codes(&analyze_query(&json!({"n": {"$eq": 10, "$lt": 5}}))),
            vec!["Q002"]
        );
        assert_eq!(
            codes(&analyze_query(&json!({"n": {"$exists": false, "$gt": 1}}))),
            vec!["Q002"]
        );
    }

    #[test]
    fn q002_found_inside_and_clauses() {
        let diags = analyze_query(&json!({
            "$and": [{"n": {"$gte": 10}}, {"n": {"$lte": 3}}]
        }));
        assert_eq!(codes(&diags), vec!["Q002"]);
    }

    #[test]
    fn q003_unknown_field_suggests_alias() {
        let mut aliases = BTreeMap::new();
        aliases.insert(
            "e_above_hull".to_string(),
            "stability.e_above_hull".to_string(),
        );
        let diags = analyze_query_with_schema(&json!({"chemsy": "Li-O"}), &schema(), &aliases);
        let q003 = diags
            .iter()
            .find(|d| d.code == "Q003")
            .expect("Q003 emitted");
        assert_eq!(q003.severity, Severity::Warning);
        assert!(
            q003.suggestion.as_deref().unwrap_or("").contains("chemsys"),
            "{q003:?}"
        );
    }

    #[test]
    fn q004_unindexed_scan_warns_and_indexed_does_not() {
        let diags = analyze_query_with_schema(&json!({"nsites": 2}), &schema(), &BTreeMap::new());
        assert!(codes(&diags).contains(&"Q004"), "{diags:?}");
        assert!(!has_errors(&diags), "Q004 is advisory");

        let ok = analyze_query_with_schema(
            &json!({"chemsys": "Li-O", "nsites": 2}),
            &schema(),
            &BTreeMap::new(),
        );
        assert!(!ok.iter().any(|d| d.code == "Q004"), "{ok:?}");
    }

    #[test]
    fn clean_query_has_no_diagnostics() {
        let diags = analyze_query_with_schema(
            &json!({"chemsys": "Li-O", "output.energy": {"$lt": 0.0}}),
            &schema(),
            &BTreeMap::new(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
