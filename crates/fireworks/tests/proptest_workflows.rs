//! Property-based tests for workflow-engine invariants: random DAGs and
//! random failure sequences must always terminate in a consistent
//! terminal state.

use mp_docstore::Database;
use mp_fireworks::{
    rapidfire, Binder, Firework, FwState, LaunchPad, LaunchReport, Stage, Workflow,
};
use proptest::prelude::*;
use serde_json::json;

/// Build a random DAG: each firework may depend on any earlier ones.
fn random_dag(n: usize, edges: &[bool]) -> Workflow {
    let mut fws = Vec::with_capacity(n);
    for i in 0..n {
        let mut fw = Firework::new(format!("fw{i}"), "job", Stage(json!({ "i": i })));
        for j in 0..i {
            if edges[i * n + j] {
                fw = fw.after(&format!("fw{j}"));
            }
        }
        fws.push(fw);
    }
    Workflow::new("wf", fws).expect("construction is acyclic by design")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A random DAG where every job succeeds drains completely: every
    /// firework COMPLETED, tasks == fireworks, nothing in limbo.
    #[test]
    fn success_only_runs_drain(
        n in 1usize..12,
        edges in prop::collection::vec(any::<bool>(), 144),
    ) {
        let pad = LaunchPad::new(Database::new()).unwrap();
        pad.add_workflow(&random_dag(n, &edges)).unwrap();
        let stats = rapidfire(&pad, "w", &json!({}), usize::MAX, |_| LaunchReport::Success {
            task_doc: json!({"output": {}}),
        })
        .unwrap();
        prop_assert_eq!(stats.completed, n);
        let engines = pad.database().collection("engines");
        prop_assert_eq!(engines.count(&json!({"state": "COMPLETED"})).unwrap(), n);
        prop_assert_eq!(
            engines.count(&json!({"state": {"$in": ["READY", "WAITING", "RUNNING"]}})).unwrap(),
            0
        );
        prop_assert_eq!(pad.database().collection("tasks").len(), n);
    }

    /// Dependencies are honoured: a child never runs before its parents.
    /// We check causality through launch order.
    #[test]
    fn children_run_after_parents(
        n in 2usize..10,
        edges in prop::collection::vec(any::<bool>(), 100),
    ) {
        let pad = LaunchPad::new(Database::new()).unwrap();
        let wf = random_dag(n, &edges);
        let parent_map: Vec<Vec<usize>> = wf
            .fireworks
            .iter()
            .map(|f| {
                f.parents
                    .iter()
                    .map(|p| p.trim_start_matches("fw").parse::<usize>().unwrap())
                    .collect()
            })
            .collect();
        pad.add_workflow(&wf).unwrap();
        let mut order: Vec<usize> = Vec::new();
        rapidfire(&pad, "w", &json!({}), usize::MAX, |doc| {
            let id: usize = doc["_id"]
                .as_str()
                .unwrap()
                .trim_start_matches("fw")
                .parse()
                .unwrap();
            order.push(id);
            LaunchReport::Success {
                task_doc: json!({"output": {}}),
            }
        })
        .unwrap();
        for (pos, &id) in order.iter().enumerate() {
            for &parent in &parent_map[id] {
                let ppos = order.iter().position(|&x| x == parent).unwrap();
                prop_assert!(ppos < pos, "fw{id} ran before its parent fw{parent}");
            }
        }
    }

    /// Random failure sequences terminate: whatever mix of rerun /
    /// detour / fatal the analyzer returns, the queue reaches a state
    /// with nothing claimable and no RUNNING leftovers.
    #[test]
    fn arbitrary_failures_terminate(
        n in 1usize..8,
        edges in prop::collection::vec(any::<bool>(), 64),
        decisions in prop::collection::vec(0u8..10, 256),
    ) {
        let pad = LaunchPad::new(Database::new()).unwrap();
        pad.add_workflow(&random_dag(n, &edges)).unwrap();
        let mut k = 0usize;
        let stats = rapidfire(&pad, "w", &json!({}), 500, |_doc| {
            let d = decisions[k % decisions.len()];
            k += 1;
            match d {
                0..=5 => LaunchReport::Success {
                    task_doc: json!({"output": {}}),
                },
                6..=7 => LaunchReport::Rerun {
                    spec_updates: json!({"$inc": {"retries": 1}}),
                    reason: "injected".into(),
                },
                8 => LaunchReport::Detour {
                    spec_updates: json!({"$set": {"fixed": true}}),
                    reason: "injected".into(),
                },
                _ => LaunchReport::Fatal {
                    reason: "injected".into(),
                },
            }
        })
        .unwrap();
        // Terminated (didn't hit the 500-launch guard while work remained).
        let engines = pad.database().collection("engines");
        prop_assert_eq!(engines.count(&json!({"state": "RUNNING"})).unwrap(), 0);
        if stats.launched < 500 {
            prop_assert_eq!(
                engines.count(&json!({"state": "READY"})).unwrap(),
                0,
                "claimable work left after the drain loop exited"
            );
        }
        // Tasks only exist for COMPLETED fireworks, one per launch.
        let completed = engines.count(&json!({"state": "COMPLETED"})).unwrap();
        prop_assert_eq!(pad.database().collection("tasks").len(), completed);
    }

    /// Duplicate binders never produce duplicate tasks, regardless of
    /// how many identical workflows are submitted.
    #[test]
    fn binder_idempotence(copies in 1usize..6, jobs in 1usize..5) {
        let pad = LaunchPad::new(Database::new()).unwrap();
        for c in 0..copies {
            let fws: Vec<Firework> = (0..jobs)
                .map(|j| {
                    Firework::new(
                        format!("c{c}-j{j}"),
                        "dup",
                        Stage(json!({ "j": j })),
                    )
                    .with_binder(Binder::new(format!("identity-{j}"), "GGA"))
                })
                .collect();
            pad.add_workflow(&Workflow::new(format!("wf{c}"), fws).unwrap()).unwrap();
        }
        rapidfire(&pad, "w", &json!({}), usize::MAX, |_| LaunchReport::Success {
            task_doc: json!({"output": {}}),
        })
        .unwrap();
        // Exactly one task per distinct identity; every other copy is an
        // archived pointer.
        prop_assert_eq!(pad.database().collection("tasks").len(), jobs);
        let engines = pad.database().collection("engines");
        prop_assert_eq!(
            engines.count(&json!({"duplicate_of": {"$exists": true}})).unwrap(),
            (copies - 1) * jobs
        );
    }
}

/// Terminal-state taxonomy: every engine entry ends in exactly one of
/// the defined states (sanity net under the proptests above).
#[test]
fn state_strings_cover_all_terminals() {
    for s in ["COMPLETED", "FIZZLED", "DEFUSED", "ARCHIVED"] {
        assert!(FwState::parse(s).is_some());
    }
}
