//! Loom model-checking of the LaunchPad claim protocol.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`. The claim transaction
//! (READY→RUNNING flip, binder dedup, running-twin check) spans several
//! store operations; the rank-100 `claim_lock` serializes it. This
//! model verifies the user-visible consequence: one firework, two
//! racing workers, exactly one successful checkout.
#![cfg(loom)]

use loom::thread;
use mp_docstore::Database;
use mp_fireworks::{Firework, LaunchPad, LaunchPadConfig, Stage, Workflow};
use serde_json::json;
use std::sync::Arc;

#[test]
fn claim_race_admits_exactly_one_worker() {
    loom::model(|| {
        let lp = Arc::new(
            LaunchPad::with_config(
                Database::new(),
                LaunchPadConfig {
                    lint_gate: false,
                    ..LaunchPadConfig::default()
                },
            )
            .unwrap(),
        );
        lp.add_workflow(&Workflow::single(
            "wf",
            Firework::new("fw", "only", Stage::empty()),
        ))
        .unwrap();

        let handles: Vec<_> = (0..2)
            .map(|w| {
                let lp = lp.clone();
                thread::spawn(move || lp.claim_next(&json!({}), &format!("w{w}")).unwrap())
            })
            .collect();
        let claims: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            claims.iter().filter(|c| c.is_some()).count(),
            1,
            "exactly one worker must win the checkout: {claims:?}"
        );
    });
}
