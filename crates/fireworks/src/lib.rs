//! # mp-fireworks — datastore-backed dynamic workflow engine
//!
//! The Rust reproduction of the paper's FireWorks (§III-C): workflows
//! are DAGs of [`Firework`]s whose state lives entirely in the document
//! store (`engines`, `tasks`, `workflows`, `binders` collections), and
//! whose four signature features are all implemented and tested:
//!
//! * **Re-runs** — failed jobs requeued with more resources
//!   ([`LaunchReport::Rerun`]);
//! * **Detours** — failed jobs replaced by modified copies, rest of the
//!   workflow intact ([`LaunchReport::Detour`]);
//! * **Duplicate detection** — [`firework::Binder`]-keyed identity; dup
//!   jobs become pointers to the prior result, making submission
//!   idempotent;
//! * **Iteration** — linear parameter scans and a genetic-algorithm
//!   search ([`iteration`]).
//!
//! Job selection is an arbitrary Mongo-style query over job inputs
//! (§III-B2), and claims are atomic find-and-modify operations.

pub mod firework;
pub mod iteration;
pub mod launchpad;
pub mod rocket;

pub use firework::{Binder, Firework, Fuse, FuseCondition, FwState, Stage, Workflow};
pub use iteration::{iterate_until, GeneticSearch, IterationOutcome};
pub use launchpad::{LaunchPad, LaunchPadConfig, LaunchReport, ReportOutcome};
pub use rocket::{rapidfire, RocketStats};
