//! Iteration: repeated runs of a job with evolving parameters.
//!
//! §III-C3 "Iteration": "Some calculations require iterative runs of the
//! same job, with incrementing input parameters, until a condition is
//! met. In general, the number of iterations required is not known in
//! advance. More sophisticated search algorithms than simple linear
//! increments (e.g., genetic algorithms) may be required."
//!
//! Both strategies live here: [`iterate_until`] (linear increments
//! through the launchpad) and a small real-coded [`GeneticSearch`].

use crate::firework::{Firework, Stage, Workflow};
use crate::launchpad::{LaunchPad, LaunchReport};
use mp_docstore::Result;
use serde_json::{json, Value};

/// Outcome of an iterative campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationOutcome {
    /// Parameter value that satisfied the condition (if any).
    pub converged_at: Option<f64>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Task ids produced, in order.
    pub task_ids: Vec<String>,
}

/// Run `executor` repeatedly through the launchpad, incrementing the
/// numeric spec field `param` by `step` each round, until `accept`
/// returns true on the task output or `max_iter` is reached. Each round
/// is a real firework (visible in `engines`/`tasks`), reproducing how
/// the paper's inner loop drives repeated VASP runs.
#[allow(clippy::too_many_arguments)]
pub fn iterate_until(
    pad: &LaunchPad,
    id_prefix: &str,
    base_spec: Value,
    param: &str,
    start: f64,
    step: f64,
    max_iter: usize,
    mut executor: impl FnMut(&Value) -> Value,
    mut accept: impl FnMut(&Value) -> bool,
) -> Result<IterationOutcome> {
    let mut task_ids = Vec::new();
    let mut value = start;
    for i in 0..max_iter {
        let fw_id = format!("{id_prefix}-it{i}");
        let mut spec = base_spec.clone();
        if let Some(obj) = spec.as_object_mut() {
            obj.insert(param.to_string(), json!(value));
        }
        let fw = Firework::new(&fw_id, format!("{id_prefix} iteration {i}"), Stage(spec));
        pad.add_workflow(&Workflow::single(format!("{id_prefix}-wf{i}"), fw))?;
        let doc = pad
            .claim_next(&json!({"_id": fw_id}), "iterator")?
            .expect("just-added firework is READY");
        let output = executor(&doc["spec"]);
        let done = accept(&output);
        pad.report(
            &fw_id,
            LaunchReport::Success {
                task_doc: json!({ "output": output }),
            },
        )?;
        task_ids.push(format!("task-{fw_id}-1"));
        if done {
            return Ok(IterationOutcome {
                converged_at: Some(value),
                iterations: i + 1,
                task_ids,
            });
        }
        value += step;
    }
    Ok(IterationOutcome {
        converged_at: None,
        iterations: max_iter,
        task_ids,
    })
}

/// A small real-coded genetic algorithm over fixed-length parameter
/// vectors, deterministic under a seed.
pub struct GeneticSearch {
    /// Population size.
    pub population: usize,
    /// Mutation amplitude (per-gene, fraction of range).
    pub mutation: f64,
    /// Per-gene (lo, hi) bounds.
    pub bounds: Vec<(f64, f64)>,
    rng_state: u64,
}

impl GeneticSearch {
    /// New search with bounds per gene.
    pub fn new(bounds: Vec<(f64, f64)>, population: usize, seed: u64) -> Self {
        GeneticSearch {
            population: population.max(4),
            mutation: 0.1,
            bounds,
            rng_state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn random_genome(&mut self) -> Vec<f64> {
        (0..self.bounds.len())
            .map(|g| {
                let (lo, hi) = self.bounds[g];
                lo + self.next_f64() * (hi - lo)
            })
            .collect()
    }

    /// Minimize `fitness` over `generations`. Returns (best genome,
    /// best fitness).
    pub fn minimize(
        &mut self,
        generations: usize,
        mut fitness: impl FnMut(&[f64]) -> f64,
    ) -> (Vec<f64>, f64) {
        let mut pop: Vec<Vec<f64>> = (0..self.population).map(|_| self.random_genome()).collect();
        let mut scored: Vec<(f64, Vec<f64>)> = pop.drain(..).map(|g| (fitness(&g), g)).collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fitness"));
        for _ in 0..generations {
            let elite = self.population / 4;
            let mut next: Vec<Vec<f64>> = scored
                .iter()
                .take(elite.max(1))
                .map(|(_, g)| g.clone())
                .collect();
            while next.len() < self.population {
                // Tournament parents from the top half.
                let half = (scored.len() / 2).max(1);
                let pa = (self.next_f64() * half as f64) as usize % half;
                let pb = (self.next_f64() * half as f64) as usize % half;
                let (ga, gb) = (&scored[pa].1, &scored[pb].1);
                let mut child: Vec<f64> = ga
                    .iter()
                    .zip(gb.iter())
                    .map(|(a, b)| if self.next_f64() < 0.5 { *a } else { *b })
                    .collect();
                for (g, gene) in child.iter_mut().enumerate() {
                    if self.next_f64() < 0.4 {
                        let (lo, hi) = self.bounds[g];
                        *gene += (self.next_f64() - 0.5) * self.mutation * (hi - lo);
                        *gene = gene.clamp(lo, hi);
                    }
                }
                next.push(child);
            }
            scored = next.drain(..).map(|g| (fitness(&g), g)).collect();
            scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite fitness"));
        }
        let (f, g) = scored.into_iter().next().expect("population non-empty");
        (g, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_docstore::Database;

    #[test]
    fn linear_iteration_stops_at_condition() {
        let pad = LaunchPad::new(Database::new()).unwrap();
        // "Converge" when encut ≥ 520.
        let out = iterate_until(
            &pad,
            "encut-scan",
            json!({"kind": "convergence-scan"}),
            "encut",
            400.0,
            40.0,
            10,
            |spec| json!({"encut_used": spec["encut"], "converged": spec["encut"].as_f64().unwrap() >= 520.0}),
            |output| output["converged"] == json!(true),
        )
        .unwrap();
        assert_eq!(out.converged_at, Some(520.0));
        assert_eq!(out.iterations, 4); // 400, 440, 480, 520
        assert_eq!(out.task_ids.len(), 4);
        // Every iteration is a real task in the datastore.
        assert_eq!(pad.database().collection("tasks").len(), 4);
    }

    #[test]
    fn linear_iteration_gives_up_at_max() {
        let pad = LaunchPad::new(Database::new()).unwrap();
        let out = iterate_until(
            &pad,
            "hopeless",
            json!({}),
            "x",
            0.0,
            1.0,
            5,
            |_spec| json!({}),
            |_output| false,
        )
        .unwrap();
        assert_eq!(out.converged_at, None);
        assert_eq!(out.iterations, 5);
    }

    #[test]
    fn ga_finds_quadratic_minimum() {
        let mut ga = GeneticSearch::new(vec![(-5.0, 5.0), (-5.0, 5.0)], 24, 7);
        let (best, f) = ga.minimize(40, |g| (g[0] - 1.5).powi(2) + (g[1] + 2.0).powi(2));
        assert!(f < 0.05, "fitness {f}");
        assert!((best[0] - 1.5).abs() < 0.25, "{best:?}");
        assert!((best[1] + 2.0).abs() < 0.25, "{best:?}");
    }

    #[test]
    fn ga_deterministic_under_seed() {
        let run = |seed| {
            let mut ga = GeneticSearch::new(vec![(0.0, 10.0)], 12, seed);
            ga.minimize(15, |g| (g[0] - 7.0).abs())
        };
        assert_eq!(run(3), run(3));
        // Different seeds explore differently (almost surely).
        assert_ne!(run(3).0, run(4).0);
    }

    #[test]
    fn ga_respects_bounds() {
        let mut ga = GeneticSearch::new(vec![(2.0, 3.0)], 10, 1);
        let (best, _) = ga.minimize(10, |g| -g[0]); // push toward upper bound
        assert!(best[0] <= 3.0 + 1e-12 && best[0] >= 2.0);
        assert!(best[0] > 2.9, "should approach the bound: {}", best[0]);
    }
}
