//! The LaunchPad: workflow state persisted in the datastore.
//!
//! This is the heart of the paper's first contribution: the datastore
//! "manag[es] the state of high-throughput calculations". Queue entries
//! live in the `engines` collection ("jobs that are waiting to be run,
//! running, and completed"), results in `tasks`, DAG metadata in
//! `workflows`, and the dedup registry in `binders`. Workers claim jobs
//! with an atomic find-and-modify, and job selection is an arbitrary
//! Mongo query over the job inputs (§III-B2).

use crate::firework::{Firework, FuseCondition, FwState, Stage, Workflow};
use mp_docstore::{Database, Docs, Document, FindOptions, Result, SortDir, StoreError};
use mp_sync::{LockRank, OrderedMutex};
use serde_json::{json, Value};
use std::sync::Arc;

/// What a worker reports after executing a claimed firework. The
/// *Analyzer* (arbitrary code run after completion, §III-C2) decides
/// which variant to send.
#[derive(Debug, Clone)]
pub enum LaunchReport {
    /// Job finished; store its reduced output document.
    Success {
        /// The reduced result (from the FireWorks Analyzer data
        /// reduction).
        task_doc: Value,
    },
    /// Re-run the same job with updated spec (machine failure /
    /// walltime kill — §III-C3 "Re-runs").
    Rerun {
        /// Mongo-update-style changes to the spec.
        spec_updates: Value,
        /// Why (recorded for analysis).
        reason: String,
    },
    /// Replace this job with a modified copy and continue the workflow
    /// (§III-C3 "Detours").
    Detour {
        /// Mongo-update-style changes to the spec.
        spec_updates: Value,
        /// Why (recorded for analysis).
        reason: String,
    },
    /// Beyond automated repair: fizzle and flag for manual intervention.
    Fatal {
        /// Why.
        reason: String,
    },
    /// The job never actually ran (queue rejection, allocation expired
    /// before it started): return it to READY *without* consuming a
    /// launch attempt.
    Release {
        /// Why.
        reason: String,
    },
}

/// What the launchpad did with a report.
#[derive(Debug, Clone, PartialEq)]
pub enum ReportOutcome {
    /// Task stored; children promoted.
    Completed,
    /// Firework re-queued (attempt count returned).
    Requeued(u32),
    /// A detour firework was created (its id returned).
    Detoured(String),
    /// Firework fizzled; workflow flagged for a human.
    Fizzled,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct LaunchPadConfig {
    /// Max launches per firework before a rerun request fizzles it.
    pub max_launches: u32,
    /// Max detours per firework before a detour request fizzles it.
    pub max_detours: u32,
    /// Run the `mp-lint` workflow analyzer as a hard gate in
    /// [`LaunchPad::add_workflow`] (escape hatch: set false to submit
    /// workflows the analyzer would reject).
    pub lint_gate: bool,
}

impl Default for LaunchPadConfig {
    fn default() -> Self {
        LaunchPadConfig {
            max_launches: 5,
            max_detours: 4,
            lint_gate: true,
        }
    }
}

/// The datastore-backed workflow engine.
pub struct LaunchPad {
    db: Database,
    config: LaunchPadConfig,
    /// Serializes the multi-operation claim transaction in
    /// [`claim_next`](Self::claim_next): the READY→RUNNING flip, the
    /// late-dedup binder lookup, and the running-twin check are several
    /// store operations, and without this outermost lock two workers can
    /// both pass the twin check and compute the same binder twice.
    /// Rank `LaunchPad` — held across `Database`/`Collection` locks.
    claim_lock: OrderedMutex<()>,
}

impl LaunchPad {
    /// Wrap a database, creating the indexes the hot queries need.
    pub fn new(db: Database) -> Result<LaunchPad> {
        Self::with_config(db, LaunchPadConfig::default())
    }

    /// Wrap with explicit configuration.
    pub fn with_config(db: Database, config: LaunchPadConfig) -> Result<LaunchPad> {
        let engines = db.collection("engines");
        engines.create_index("state", false)?;
        engines.create_index("wf_id", false)?;
        let binders = db.collection("binders");
        binders.create_index("key", true)?;
        db.collection("tasks").create_index("fw_id", false)?;
        Ok(LaunchPad {
            db,
            config,
            claim_lock: OrderedMutex::new(LockRank::LaunchPad, ()),
        })
    }

    /// The underlying database (shared with analytics and the web API).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Submit a workflow: every firework becomes an `engines` document,
    /// roots READY, the rest WAITING. Duplicate binders short-circuit
    /// immediately to ARCHIVED-with-pointer.
    ///
    /// With `config.lint_gate` (the default), the `mp-lint` workflow
    /// analyzer runs first and Error-severity findings (cycles, unknown
    /// parents, duplicate ids, fuse inconsistencies) reject the
    /// submission with the rendered diagnostics.
    pub fn add_workflow(&self, wf: &Workflow) -> Result<()> {
        if self.config.lint_gate {
            let diags = mp_lint::analyze_workflow(&Self::lint_nodes(wf));
            if mp_lint::has_errors(&diags) {
                return Err(StoreError::InvalidDocument(mp_lint::render(&diags)));
            }
        }
        wf.validate().map_err(StoreError::InvalidDocument)?;
        self.db.collection("workflows").insert_one(json!({
            "_id": wf.wf_id,
            "name": wf.name,
            "state": "ACTIVE",
            "approved": false,
            "fw_ids": wf.fireworks.iter().map(|f| f.fw_id.clone()).collect::<Vec<_>>(),
        }))?;
        let engines = self.db.collection("engines");
        for fw in &wf.fireworks {
            let state = if fw.parents.is_empty() {
                FwState::Ready
            } else {
                FwState::Waiting
            };
            engines.insert_one(self.engine_doc(wf, fw, state))?;
        }
        // Root-level dedup check.
        for fw in &wf.fireworks {
            if fw.parents.is_empty() {
                self.try_dedup(&fw.fw_id)?;
            }
        }
        Ok(())
    }

    /// Reduce fireworks to the generic node shape the lint analyzer takes.
    fn lint_nodes(wf: &Workflow) -> Vec<mp_lint::WfNode> {
        wf.fireworks
            .iter()
            .map(|fw| mp_lint::WfNode {
                id: fw.fw_id.clone(),
                name: fw.name.clone(),
                parents: fw.parents.clone(),
                binder_key: fw.binder.as_ref().map(|b| b.key.clone()),
                fuse_filter: match &fw.fuse.condition {
                    FuseCondition::ParentOutputMatches { filter } => Some(filter.clone()),
                    _ => None,
                },
                fuse_requires_parent_output: matches!(
                    fw.fuse.condition,
                    FuseCondition::ParentOutputMatches { .. }
                ),
            })
            .collect()
    }

    fn engine_doc(&self, wf: &Workflow, fw: &Firework, state: FwState) -> Value {
        let children: Vec<&str> = wf
            .children_of(&fw.fw_id)
            .iter()
            .map(|c| c.fw_id.as_str())
            .collect();
        json!({
            "_id": fw.fw_id,
            "wf_id": wf.wf_id,
            "name": fw.name,
            "state": state.as_str(),
            "spec": fw.stage.0,
            "binder": fw.binder.as_ref().map(|b| b.key.clone()),
            "fuse": serde_json::to_value(&fw.fuse).expect("fuse serializes"),
            "parents": fw.parents,
            "children": children,
            "launches": fw.launches,
            "detours": 0,
            "worker": null,
            "history": [],
        })
    }

    /// If this firework's binder already has a registered result, archive
    /// it with a pointer (the paper's duplicate replacement). Returns
    /// true when deduplicated.
    fn try_dedup(&self, fw_id: &str) -> Result<bool> {
        let engines = self.db.collection("engines");
        let Some(doc) = engines.find_one(&json!({"_id": fw_id}))? else {
            return Ok(false);
        };
        let Some(key) = doc["binder"].as_str() else {
            return Ok(false);
        };
        let binders = self.db.collection("binders");
        if let Some(existing) = binders.find_one(&json!({"key": key}))? {
            let task_id = existing["task_id"].clone();
            engines.update_one(
                &json!({"_id": fw_id}),
                &json!({"$set": {
                    "state": "ARCHIVED",
                    "duplicate_of": task_id,
                }}),
            )?;
            self.promote_children(fw_id)?;
            return Ok(true);
        }
        Ok(false)
    }

    /// Atomically claim the next READY firework matching `extra_query`
    /// (a Mongo filter over the engine doc, e.g.
    /// `{"spec.elements": {"$all": ["Li","O"]}}`). Highest-priority =
    /// fewest launches first, then insertion order.
    // mp-lint: allow(E003) — the claim lock exists precisely to
    // serialize claimants across the find-and-modify + dedup sequence;
    // scatter workers inside the store never take LaunchPad-rank locks.
    pub fn claim_next(&self, extra_query: &Value, worker: &str) -> Result<Option<Arc<Document>>> {
        // mp-lint: allow(L003) — holding rank LaunchPad across store
        // operations is exactly what the rank table sanctions here.
        let _claim = self.claim_lock.lock();
        let engines = self.db.collection("engines");
        // Fireworks deferred within this call because an identical job
        // (same binder) is currently running — they stay READY and will
        // resolve to pointers once the running twin completes.
        let mut deferred: Vec<Value> = Vec::new();
        loop {
            let mut filter = json!({"state": "READY"});
            if let (Some(fm), Some(em)) = (filter.as_object_mut(), extra_query.as_object()) {
                for (k, v) in em {
                    fm.insert(k.clone(), v.clone());
                }
            }
            if !deferred.is_empty() {
                filter["_id"] = json!({"$nin": deferred});
            }
            let claimed = engines.find_one_and_update(
                &filter,
                &json!({"$set": {"state": "RUNNING", "worker": worker}, "$inc": {"launches": 1}}),
                Some(&FindOptions::all().sort_by("launches", SortDir::Asc)),
                true,
            )?;
            let Some(doc) = claimed else {
                return Ok(None);
            };
            if let Some(key) = doc["binder"].as_str() {
                let fw_id = doc["_id"].as_str().expect("fw id").to_string();
                // Late dedup: a concurrent identical job may have
                // completed since this one became READY.
                let binders = self.db.collection("binders");
                if let Some(existing) = binders.find_one(&json!({"key": key}))? {
                    engines.update_one(
                        &json!({"_id": fw_id}),
                        &json!({"$set": {"state": "ARCHIVED", "duplicate_of": existing["task_id"]}}),
                    )?;
                    self.promote_children(&fw_id)?;
                    continue; // claim another
                }
                // An identical job is running right now: defer this one
                // rather than computing it twice.
                let twin_running = engines.count(&json!({
                    "binder": key, "state": "RUNNING", "_id": {"$ne": fw_id}
                }))?;
                if twin_running > 0 {
                    engines.update_one(
                        &json!({"_id": fw_id}),
                        &json!({"$set": {"state": "READY", "worker": null},
                                "$inc": {"launches": -1}}),
                    )?;
                    deferred.push(json!(fw_id));
                    continue;
                }
            }
            return Ok(Some(doc));
        }
    }

    /// Handle a worker's report for a RUNNING firework.
    pub fn report(&self, fw_id: &str, report: LaunchReport) -> Result<ReportOutcome> {
        let engines = self.db.collection("engines");
        let doc = engines
            .find_one(&json!({"_id": fw_id}))?
            .ok_or_else(|| StoreError::NoSuchCollection(format!("firework {fw_id}")))?;
        match report {
            LaunchReport::Success { mut task_doc } => {
                let launch = doc["launches"].as_u64().unwrap_or(1);
                let task_id = format!("task-{fw_id}-{launch}");
                if let Some(obj) = task_doc.as_object_mut() {
                    obj.insert("_id".into(), json!(task_id));
                    obj.insert("fw_id".into(), json!(fw_id));
                    obj.insert("wf_id".into(), doc["wf_id"].clone());
                    obj.insert("launch".into(), json!(launch));
                }
                self.db.collection("tasks").insert_one(task_doc)?;
                // Register the binder so future duplicates point here.
                if let Some(key) = doc["binder"].as_str() {
                    let _ = self.db.collection("binders").insert_one(json!({
                        "key": key,
                        "task_id": task_id,
                        "fw_id": fw_id,
                    }));
                }
                engines.update_one(
                    &json!({"_id": fw_id}),
                    &json!({"$set": {"state": "COMPLETED", "task_id": task_id},
                            "$push": {"history": {"event": "completed", "launch": launch}}}),
                )?;
                self.promote_children(fw_id)?;
                Ok(ReportOutcome::Completed)
            }
            LaunchReport::Rerun {
                spec_updates,
                reason,
            } => {
                let launches = doc["launches"].as_u64().unwrap_or(0) as u32;
                if launches >= self.config.max_launches {
                    return self.fizzle(fw_id, &format!("max launches exceeded: {reason}"));
                }
                let mut stage = Stage(doc["spec"].clone());
                stage
                    .apply_overrides(&spec_updates)
                    .map_err(StoreError::BadUpdate)?;
                engines.update_one(
                    &json!({"_id": fw_id}),
                    &json!({"$set": {"state": "READY", "spec": stage.0, "worker": null},
                            "$push": {"history": {"event": "rerun", "reason": reason,
                                                   "updates": spec_updates}}}),
                )?;
                Ok(ReportOutcome::Requeued(launches))
            }
            LaunchReport::Detour {
                spec_updates,
                reason,
            } => {
                let detours = doc["detours"].as_u64().unwrap_or(0) as u32;
                if detours >= self.config.max_detours {
                    return self.fizzle(fw_id, &format!("max detours exceeded: {reason}"));
                }
                let mut stage = Stage(doc["spec"].clone());
                stage
                    .apply_overrides(&spec_updates)
                    .map_err(StoreError::BadUpdate)?;
                // The detour inherits identity (binder continues to refer
                // to the same logical calculation) but is a fresh engine
                // entry; children are re-parented onto it.
                let base_id = doc
                    .get("detour_of")
                    .and_then(Value::as_str)
                    .unwrap_or(fw_id)
                    .to_string();
                let new_id = format!("{base_id}-d{}", detours + 1);
                let mut new_doc = (*doc).clone();
                if let Some(obj) = new_doc.as_object_mut() {
                    obj.insert("_id".into(), json!(new_id));
                    obj.insert("state".into(), json!("READY"));
                    obj.insert("spec".into(), stage.0);
                    obj.insert("worker".into(), Value::Null);
                    obj.insert("detours".into(), json!(detours + 1));
                    obj.insert("detour_of".into(), json!(base_id));
                    obj.insert(
                        "history".into(),
                        json!([{"event": "detour", "reason": reason, "updates": spec_updates,
                                "from": fw_id}]),
                    );
                }
                engines.insert_one(new_doc)?;
                engines.update_one(
                    &json!({"_id": fw_id}),
                    &json!({"$set": {"state": "ARCHIVED", "replaced_by": new_id}}),
                )?;
                // Re-parent the failed firework's children onto the
                // detour so the rest of the workflow "should be the
                // same" (§III-C3).
                for child_id in self.child_ids(fw_id)? {
                    engines.update_one(
                        &json!({"_id": child_id}),
                        &json!({"$pull": {"parents": fw_id},
                                "$addToSet": {"parents": new_id}}),
                    )?;
                }
                Ok(ReportOutcome::Detoured(new_id))
            }
            LaunchReport::Fatal { reason } => self.fizzle(fw_id, &reason),
            LaunchReport::Release { reason } => {
                engines.update_one(
                    &json!({"_id": fw_id}),
                    &json!({"$set": {"state": "READY", "worker": null},
                            "$inc": {"launches": -1},
                            "$push": {"history": {"event": "released", "reason": reason}}}),
                )?;
                let launches = doc["launches"].as_u64().unwrap_or(1).saturating_sub(1) as u32;
                Ok(ReportOutcome::Requeued(launches))
            }
        }
    }

    /// Ids of fireworks that listed `fw_id` as a parent, recorded in the
    /// engine document at submission time (the submitted topology is
    /// immutable, so this survives re-parenting).
    fn child_ids(&self, fw_id: &str) -> Result<Vec<String>> {
        let engines = self.db.collection("engines");
        let Some(doc) = engines.find_one(&json!({"_id": fw_id}))? else {
            return Ok(vec![]);
        };
        Ok(doc["children"]
            .as_array()
            .map(|a| {
                a.iter()
                    .filter_map(Value::as_str)
                    .map(String::from)
                    .collect()
            })
            .unwrap_or_default())
    }

    fn fizzle(&self, fw_id: &str, reason: &str) -> Result<ReportOutcome> {
        let engines = self.db.collection("engines");
        let doc = engines.find_one(&json!({"_id": fw_id}))?;
        engines.update_one(
            &json!({"_id": fw_id}),
            &json!({"$set": {"state": "FIZZLED", "fizzle_reason": reason}}),
        )?;
        // §III-C3: "the system needs to abort the entire workflow and
        // mark it for manual intervention."
        if let Some(doc) = doc {
            let wf_id = doc["wf_id"].clone();
            engines.update_many(
                &json!({"wf_id": wf_id, "state": {"$in": ["WAITING", "READY"]}}),
                &json!({"$set": {"state": "DEFUSED"}}),
            )?;
            self.db.collection("workflows").update_one(
                &json!({"_id": wf_id}),
                &json!({"$set": {"state": "NEEDS_HUMAN", "fizzle_reason": reason}}),
            )?;
        }
        Ok(ReportOutcome::Fizzled)
    }

    /// Promote WAITING children of `fw_id` whose parents are all
    /// terminal-successful and whose fuse condition holds.
    fn promote_children(&self, fw_id: &str) -> Result<()> {
        let engines = self.db.collection("engines");
        let children = engines.find(&json!({"parents": fw_id, "state": "WAITING"}))?;
        for child in children {
            let child_id = child["_id"].as_str().expect("engine _id").to_string();
            let parents: Vec<String> = child["parents"]
                .as_array()
                .map(|a| {
                    a.iter()
                        .filter_map(Value::as_str)
                        .map(String::from)
                        .collect()
                })
                .unwrap_or_default();
            let mut all_done = true;
            for p in &parents {
                let pdoc = engines.find_one(&json!({"_id": p}))?;
                let ok = pdoc
                    .as_ref()
                    .and_then(|d| d["state"].as_str())
                    .map(|s| s == "COMPLETED" || s == "ARCHIVED")
                    .unwrap_or(false);
                if !ok {
                    all_done = false;
                    break;
                }
            }
            if !all_done {
                continue;
            }
            // Fuse condition.
            let fuse: crate::firework::Fuse =
                serde_json::from_value(child["fuse"].clone()).unwrap_or_default();
            let released = match &fuse.condition {
                FuseCondition::ParentsCompleted => true,
                FuseCondition::ParentOutputMatches { filter } => {
                    let merged = self.merged_parent_outputs(&parents)?;
                    mp_docstore::Filter::parse(filter)?.matches(&merged)
                }
                FuseCondition::UserApproved => {
                    let wf = self
                        .db
                        .collection("workflows")
                        .find_one(&json!({"_id": child["wf_id"]}))?;
                    wf.map(|w| w["approved"] == json!(true)).unwrap_or(false)
                }
            };
            if !released {
                continue;
            }
            // Apply fuse overrides to the spec (recorded, per the paper).
            // Overrides may reference parent outputs via
            // `{"$fromParent": "<dotted path>"}` — "overriding input
            // parameters prior to execution, based on the output state
            // of any parent jobs" (§III-C2).
            let mut update = json!({"$set": {"state": "READY"}});
            if let Some(overrides) = &fuse.overrides {
                let resolved = if contains_from_parent(overrides) {
                    let merged = self.merged_parent_outputs(&parents)?;
                    resolve_from_parent(overrides, &merged)?
                } else {
                    overrides.clone()
                };
                let mut stage = Stage(child["spec"].clone());
                stage
                    .apply_overrides(&resolved)
                    .map_err(StoreError::BadUpdate)?;
                update = json!({"$set": {"state": "READY", "spec": stage.0},
                                "$push": {"history": {"event": "fuse_overrides",
                                                       "updates": resolved}}});
            }
            engines.update_one(&json!({"_id": child_id}), &update)?;
            self.try_dedup(&child_id)?;
        }
        Ok(())
    }

    /// Merge the `output` sections of the parents' latest task docs into
    /// one document (later parents win key conflicts).
    fn merged_parent_outputs(&self, parents: &[String]) -> Result<Value> {
        let tasks = self.db.collection("tasks");
        let mut merged = json!({});
        for p in parents {
            let docs = tasks.find_with(
                &json!({"fw_id": p}),
                &FindOptions::all().sort_by("launch", SortDir::Desc).limit(1),
            )?;
            if let Some(doc) = docs.first() {
                if let (Some(m), Some(o)) = (merged.as_object_mut(), doc.as_object()) {
                    for (k, v) in o {
                        m.insert(k.clone(), v.clone());
                    }
                }
            }
        }
        Ok(merged)
    }

    /// Approve a workflow (releases `UserApproved` fuses on next
    /// promotion sweep).
    pub fn approve_workflow(&self, wf_id: &str) -> Result<()> {
        self.db
            .collection("workflows")
            .update_one(&json!({"_id": wf_id}), &json!({"$set": {"approved": true}}))?;
        // Sweep: re-promote children of every completed fw in this wf.
        let done = self
            .db
            .collection("engines")
            .find(&json!({"wf_id": wf_id, "state": {"$in": ["COMPLETED", "ARCHIVED"]}}))?;
        for d in done {
            if let Some(id) = d["_id"].as_str() {
                self.promote_children(id)?;
            }
        }
        Ok(())
    }

    /// Current state of a firework.
    pub fn state_of(&self, fw_id: &str) -> Result<Option<FwState>> {
        Ok(self
            .db
            .collection("engines")
            .find_one(&json!({"_id": fw_id}))?
            .and_then(|d| d["state"].as_str().and_then(FwState::parse)))
    }

    /// Count engines by state.
    pub fn state_counts(&self) -> Result<Vec<(String, usize)>> {
        let engines = self.db.collection("engines");
        let mut out = Vec::new();
        for s in [
            "WAITING",
            "READY",
            "RUNNING",
            "COMPLETED",
            "FIZZLED",
            "DEFUSED",
            "ARCHIVED",
        ] {
            let n = engines.count(&json!({ "state": s }))?;
            if n > 0 {
                out.push((s.to_string(), n));
            }
        }
        Ok(out)
    }

    /// Workflows flagged for manual intervention.
    pub fn needs_human(&self) -> Result<Docs> {
        self.db
            .collection("workflows")
            .find(&json!({"state": "NEEDS_HUMAN"}))
    }
}

/// Does an override document contain a `$fromParent` reference?
fn contains_from_parent(v: &Value) -> bool {
    match v {
        Value::Object(m) => m.contains_key("$fromParent") || m.values().any(contains_from_parent),
        Value::Array(a) => a.iter().any(contains_from_parent),
        _ => false,
    }
}

/// Replace every `{"$fromParent": "<path>"}` node with the value at that
/// dotted path in the merged parent-output document. A missing path is
/// an error — a workflow must not silently run with absent inputs.
fn resolve_from_parent(v: &Value, parent_outputs: &Value) -> Result<Value> {
    match v {
        Value::Object(m) => {
            if let Some(path) = m.get("$fromParent").and_then(Value::as_str) {
                if m.len() != 1 {
                    return Err(StoreError::BadUpdate(
                        "$fromParent must be the only key in its object".into(),
                    ));
                }
                return mp_docstore::value::get_path(parent_outputs, path)
                    .cloned()
                    .ok_or_else(|| {
                        StoreError::BadUpdate(format!(
                            "$fromParent path '{path}' missing from parent outputs"
                        ))
                    });
            }
            let mut out = serde_json::Map::new();
            for (k, val) in m {
                out.insert(k.clone(), resolve_from_parent(val, parent_outputs)?);
            }
            Ok(Value::Object(out))
        }
        Value::Array(a) => a
            .iter()
            .map(|x| resolve_from_parent(x, parent_outputs))
            .collect::<Result<Vec<_>>>()
            .map(Value::Array),
        other => Ok(other.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firework::{Binder, Firework, Fuse, FuseCondition, Stage, Workflow};

    fn pad() -> LaunchPad {
        LaunchPad::new(Database::new()).unwrap()
    }

    fn fw(id: &str, spec: Value) -> Firework {
        Firework::new(id, id, Stage(spec))
    }

    fn chain(wf_id: &str) -> Workflow {
        let a = fw("a", json!({"step": 1}));
        let b = fw("b", json!({"step": 2})).after("a");
        let c = fw("c", json!({"step": 3})).after("b");
        Workflow::new(wf_id, vec![a, b, c]).unwrap()
    }

    #[test]
    fn submit_marks_roots_ready() {
        let lp = pad();
        lp.add_workflow(&chain("wf1")).unwrap();
        assert_eq!(lp.state_of("a").unwrap(), Some(FwState::Ready));
        assert_eq!(lp.state_of("b").unwrap(), Some(FwState::Waiting));
    }

    #[test]
    fn claim_and_complete_promotes_children() {
        let lp = pad();
        lp.add_workflow(&chain("wf1")).unwrap();
        let doc = lp.claim_next(&json!({}), "w0").unwrap().unwrap();
        assert_eq!(doc["_id"], "a");
        assert_eq!(doc["state"], "RUNNING");
        lp.report(
            "a",
            LaunchReport::Success {
                task_doc: json!({"output": {"e": -1.0}}),
            },
        )
        .unwrap();
        assert_eq!(lp.state_of("a").unwrap(), Some(FwState::Completed));
        assert_eq!(lp.state_of("b").unwrap(), Some(FwState::Ready));
        assert_eq!(lp.state_of("c").unwrap(), Some(FwState::Waiting));
    }

    #[test]
    fn claim_respects_query_on_inputs() {
        let lp = pad();
        let a = fw("li", json!({"elements": ["Li", "O"], "nelectrons": 100}));
        let b = fw("fe", json!({"elements": ["Fe", "O"], "nelectrons": 300}));
        lp.add_workflow(&Workflow::new("wf", vec![a, b]).unwrap())
            .unwrap();
        // The paper's job-selection pattern (§III-B2).
        let q = json!({"spec.elements": {"$all": ["Li", "O"]}, "spec.nelectrons": {"$lte": 200}});
        let doc = lp.claim_next(&q, "w0").unwrap().unwrap();
        assert_eq!(doc["_id"], "li");
        assert!(lp.claim_next(&q, "w0").unwrap().is_none());
    }

    #[test]
    fn claim_returns_none_when_empty() {
        let lp = pad();
        assert!(lp.claim_next(&json!({}), "w0").unwrap().is_none());
    }

    #[test]
    fn double_claim_gets_different_jobs() {
        let lp = pad();
        let a = fw("x1", json!({}));
        let b = fw("x2", json!({}));
        lp.add_workflow(&Workflow::new("wf", vec![a, b]).unwrap())
            .unwrap();
        let c1 = lp.claim_next(&json!({}), "w1").unwrap().unwrap();
        let c2 = lp.claim_next(&json!({}), "w2").unwrap().unwrap();
        assert_ne!(c1["_id"], c2["_id"]);
        assert!(lp.claim_next(&json!({}), "w3").unwrap().is_none());
    }

    #[test]
    fn rerun_requeues_with_updated_spec() {
        let lp = pad();
        lp.add_workflow(&Workflow::single("wf", fw("a", json!({"walltime": 3600}))))
            .unwrap();
        lp.claim_next(&json!({}), "w0").unwrap().unwrap();
        let out = lp
            .report(
                "a",
                LaunchReport::Rerun {
                    spec_updates: json!({"$mul": {"walltime": 2}}),
                    reason: "walltime kill".into(),
                },
            )
            .unwrap();
        assert!(matches!(out, ReportOutcome::Requeued(_)));
        let doc = lp.claim_next(&json!({}), "w0").unwrap().unwrap();
        assert_eq!(doc["spec"]["walltime"], json!(7200));
        assert_eq!(doc["launches"], json!(2));
    }

    #[test]
    fn rerun_fizzles_after_max_launches() {
        let lp = LaunchPad::with_config(
            Database::new(),
            LaunchPadConfig {
                max_launches: 2,
                max_detours: 2,
                ..LaunchPadConfig::default()
            },
        )
        .unwrap();
        lp.add_workflow(&Workflow::single("wf", fw("a", json!({}))))
            .unwrap();
        for expect_fizzle in [false, true] {
            let claimed = lp.claim_next(&json!({}), "w").unwrap();
            assert!(claimed.is_some());
            let out = lp
                .report(
                    "a",
                    LaunchReport::Rerun {
                        spec_updates: json!({"$set": {"retry": true}}),
                        reason: "kill".into(),
                    },
                )
                .unwrap();
            if expect_fizzle {
                assert_eq!(out, ReportOutcome::Fizzled);
            }
        }
        assert_eq!(lp.state_of("a").unwrap(), Some(FwState::Fizzled));
        assert_eq!(lp.needs_human().unwrap().len(), 1);
    }

    #[test]
    fn detour_replaces_and_reparents() {
        let lp = pad();
        lp.add_workflow(&chain("wf")).unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        let out = lp
            .report(
                "a",
                LaunchReport::Detour {
                    spec_updates: json!({"$set": {"algo": "Normal"}}),
                    reason: "zbrent".into(),
                },
            )
            .unwrap();
        let ReportOutcome::Detoured(new_id) = out else {
            panic!("expected detour, got {out:?}")
        };
        assert_eq!(new_id, "a-d1");
        assert_eq!(lp.state_of("a").unwrap(), Some(FwState::Archived));
        assert_eq!(lp.state_of("a-d1").unwrap(), Some(FwState::Ready));
        // b now depends on the detour; completing it promotes b.
        let doc = lp.claim_next(&json!({}), "w").unwrap().unwrap();
        assert_eq!(doc["_id"], "a-d1");
        assert_eq!(doc["spec"]["algo"], "Normal");
        lp.report(
            "a-d1",
            LaunchReport::Success {
                task_doc: json!({"output": {}}),
            },
        )
        .unwrap();
        assert_eq!(lp.state_of("b").unwrap(), Some(FwState::Ready));
    }

    #[test]
    fn detour_chain_fizzles_at_cap() {
        let lp = LaunchPad::with_config(
            Database::new(),
            LaunchPadConfig {
                max_launches: 10,
                max_detours: 2,
                ..LaunchPadConfig::default()
            },
        )
        .unwrap();
        lp.add_workflow(&Workflow::single("wf", fw("a", json!({}))))
            .unwrap();
        let mut current = "a".to_string();
        for round in 0..3 {
            lp.claim_next(&json!({}), "w").unwrap().unwrap();
            let out = lp
                .report(
                    &current,
                    LaunchReport::Detour {
                        spec_updates: json!({"$inc": {"attempt": 1}}),
                        reason: "err".into(),
                    },
                )
                .unwrap();
            match out {
                ReportOutcome::Detoured(id) => current = id,
                ReportOutcome::Fizzled => {
                    assert_eq!(round, 2, "third detour exceeds cap of 2");
                    return;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        panic!("never fizzled");
    }

    #[test]
    fn fatal_fizzles_and_defuses_descendants() {
        let lp = pad();
        lp.add_workflow(&chain("wf")).unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        lp.report(
            "a",
            LaunchReport::Fatal {
                reason: "corrupt input".into(),
            },
        )
        .unwrap();
        assert_eq!(lp.state_of("a").unwrap(), Some(FwState::Fizzled));
        assert_eq!(lp.state_of("b").unwrap(), Some(FwState::Defused));
        assert_eq!(lp.state_of("c").unwrap(), Some(FwState::Defused));
        let humans = lp.needs_human().unwrap();
        assert_eq!(humans.len(), 1);
        assert_eq!(humans[0]["fizzle_reason"], "corrupt input");
    }

    #[test]
    fn duplicate_binder_archives_with_pointer() {
        let lp = pad();
        let first = fw("orig", json!({})).with_binder(Binder::new("fp-1", "GGA"));
        lp.add_workflow(&Workflow::single("wf1", first)).unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        lp.report(
            "orig",
            LaunchReport::Success {
                task_doc: json!({"output": {"e": -2.0}}),
            },
        )
        .unwrap();

        // A second user submits the identical calculation.
        let dup = fw("dup", json!({})).with_binder(Binder::new("fp-1", "GGA"));
        lp.add_workflow(&Workflow::single("wf2", dup)).unwrap();
        assert_eq!(lp.state_of("dup").unwrap(), Some(FwState::Archived));
        let doc = lp
            .database()
            .collection("engines")
            .find_one(&json!({"_id": "dup"}))
            .unwrap()
            .unwrap();
        assert_eq!(doc["duplicate_of"], "task-orig-1");
        // And it never gets claimed.
        assert!(lp.claim_next(&json!({}), "w").unwrap().is_none());
    }

    #[test]
    fn late_duplicate_detected_at_claim() {
        let lp = pad();
        // Both submitted before either completes.
        let a = fw("a", json!({})).with_binder(Binder::new("fp-2", "GGA"));
        let b = fw("b", json!({})).with_binder(Binder::new("fp-2", "GGA"));
        lp.add_workflow(&Workflow::single("wf1", a)).unwrap();
        lp.add_workflow(&Workflow::single("wf2", b)).unwrap();
        let first = lp.claim_next(&json!({}), "w").unwrap().unwrap();
        let first_id = first["_id"].as_str().unwrap().to_string();
        lp.report(
            &first_id,
            LaunchReport::Success {
                task_doc: json!({"output": {}}),
            },
        )
        .unwrap();
        // The second claim must skip the duplicate and find nothing.
        assert!(lp.claim_next(&json!({}), "w").unwrap().is_none());
        let other = if first_id == "a" { "b" } else { "a" };
        assert_eq!(lp.state_of(other).unwrap(), Some(FwState::Archived));
    }

    #[test]
    fn fuse_output_condition_gates_promotion() {
        let lp = pad();
        let a = fw("a", json!({}));
        let b = fw("b", json!({})).after("a").with_fuse(Fuse {
            condition: FuseCondition::ParentOutputMatches {
                filter: json!({"output.converged": true}),
            },
            overrides: None,
        });
        lp.add_workflow(&Workflow::new("wf", vec![a, b]).unwrap())
            .unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        lp.report(
            "a",
            LaunchReport::Success {
                task_doc: json!({"output": {"converged": false}}),
            },
        )
        .unwrap();
        // Condition unmet: b stays waiting.
        assert_eq!(lp.state_of("b").unwrap(), Some(FwState::Waiting));
    }

    #[test]
    fn fuse_overrides_applied_on_release() {
        let lp = pad();
        let a = fw("a", json!({}));
        let b = fw("b", json!({"encut": 400})).after("a").with_fuse(Fuse {
            condition: FuseCondition::ParentsCompleted,
            overrides: Some(json!({"$set": {"encut": 520}})),
        });
        lp.add_workflow(&Workflow::new("wf", vec![a, b]).unwrap())
            .unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        lp.report(
            "a",
            LaunchReport::Success {
                task_doc: json!({"output": {}}),
            },
        )
        .unwrap();
        let doc = lp.claim_next(&json!({}), "w").unwrap().unwrap();
        assert_eq!(doc["_id"], "b");
        assert_eq!(doc["spec"]["encut"], json!(520));
        // The modification is recorded for later analysis (paper).
        let hist = doc["history"].as_array().unwrap();
        assert!(hist.iter().any(|h| h["event"] == "fuse_overrides"));
    }

    #[test]
    fn user_approval_gates_and_releases() {
        let lp = pad();
        let a = fw("a", json!({}));
        let b = fw("b", json!({})).after("a").with_fuse(Fuse {
            condition: FuseCondition::UserApproved,
            overrides: None,
        });
        lp.add_workflow(&Workflow::new("wf", vec![a, b]).unwrap())
            .unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        lp.report(
            "a",
            LaunchReport::Success {
                task_doc: json!({"output": {}}),
            },
        )
        .unwrap();
        assert_eq!(lp.state_of("b").unwrap(), Some(FwState::Waiting));
        lp.approve_workflow("wf").unwrap();
        assert_eq!(lp.state_of("b").unwrap(), Some(FwState::Ready));
    }

    #[test]
    fn fuse_from_parent_forwards_outputs() {
        // The relax -> static pattern: the child's structure comes from
        // the parent's output.
        let lp = pad();
        let relax = fw("relax", json!({"task_type": "relax"}));
        let static_run = fw("static", json!({"task_type": "static", "structure": null}))
            .after("relax")
            .with_fuse(Fuse {
                condition: FuseCondition::ParentsCompleted,
                overrides: Some(json!({"$set": {
                    "structure": {"$fromParent": "output.structure"},
                    "encut": 520,
                }})),
            });
        lp.add_workflow(&Workflow::new("wf", vec![relax, static_run]).unwrap())
            .unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        lp.report(
            "relax",
            LaunchReport::Success {
                task_doc: json!({"output": {"structure": {"volume": 64.2, "sites": 8},
                                          "energy_per_atom": -4.0}}),
            },
        )
        .unwrap();
        let doc = lp.claim_next(&json!({}), "w").unwrap().unwrap();
        assert_eq!(doc["_id"], "static");
        assert_eq!(doc["spec"]["structure"]["volume"], json!(64.2));
        assert_eq!(doc["spec"]["encut"], json!(520));
    }

    #[test]
    fn fuse_from_parent_missing_path_errors() {
        let lp = pad();
        let a = fw("a", json!({}));
        let b = fw("b", json!({})).after("a").with_fuse(Fuse {
            condition: FuseCondition::ParentsCompleted,
            overrides: Some(json!({"$set": {"x": {"$fromParent": "output.nope"}}})),
        });
        lp.add_workflow(&Workflow::new("wf", vec![a, b]).unwrap())
            .unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        let err = lp.report(
            "a",
            LaunchReport::Success {
                task_doc: json!({"output": {}}),
            },
        );
        assert!(err.is_err(), "missing parent output must not pass silently");
    }

    #[test]
    fn state_counts() {
        let lp = pad();
        lp.add_workflow(&chain("wf")).unwrap();
        let counts = lp.state_counts().unwrap();
        assert!(counts.contains(&("READY".to_string(), 1)));
        assert!(counts.contains(&("WAITING".to_string(), 2)));
    }

    #[test]
    fn tasks_link_back_to_fireworks() {
        let lp = pad();
        lp.add_workflow(&Workflow::single("wf", fw("a", json!({}))))
            .unwrap();
        lp.claim_next(&json!({}), "w").unwrap();
        lp.report(
            "a",
            LaunchReport::Success {
                task_doc: json!({"output": {"energy": -3.5}}),
            },
        )
        .unwrap();
        let task = lp
            .database()
            .collection("tasks")
            .find_one(&json!({"fw_id": "a"}))
            .unwrap()
            .unwrap();
        assert_eq!(task["wf_id"], "wf");
        assert_eq!(task["output"]["energy"], json!(-3.5));
        assert_eq!(task["_id"], "task-a-1");
    }

    #[test]
    fn lint_gate_rejects_cyclic_workflow() {
        let lp = pad();
        // Workflow::new would refuse this, so build the struct directly —
        // the gate must catch it anyway, with the cycle path in the error.
        let wf = Workflow {
            wf_id: "wf-cyclic".into(),
            name: "cyclic".into(),
            fireworks: vec![fw("a", json!({})).after("b"), fw("b", json!({})).after("a")],
        };
        let err = lp.add_workflow(&wf);
        match err {
            Err(StoreError::InvalidDocument(msg)) => {
                assert!(msg.contains("W001"), "{msg}");
                assert!(msg.contains("->"), "cycle path rendered: {msg}");
            }
            other => panic!("expected InvalidDocument(W001), got {other:?}"),
        }
    }

    #[test]
    fn lint_gate_rejects_root_parent_output_fuse_unless_disabled() {
        let bad_wf = || {
            Workflow::single(
                "wf-fuse",
                fw("root", json!({})).with_fuse(Fuse {
                    condition: FuseCondition::ParentOutputMatches {
                        filter: json!({"status": "converged"}),
                    },
                    overrides: None,
                }),
            )
        };
        let lp = pad();
        let err = lp.add_workflow(&bad_wf());
        match err {
            Err(StoreError::InvalidDocument(msg)) => assert!(msg.contains("W006"), "{msg}"),
            other => panic!("expected InvalidDocument(W006), got {other:?}"),
        }

        // Escape hatch: with the gate off the submission goes through.
        let lax = LaunchPad::with_config(
            Database::new(),
            LaunchPadConfig {
                lint_gate: false,
                ..LaunchPadConfig::default()
            },
        )
        .unwrap();
        lax.add_workflow(&bad_wf()).unwrap();
    }
}
