//! The Rocket: the worker-side launch loop.
//!
//! A rocket runs on (or on behalf of) a compute resource: it claims a
//! READY firework from the launchpad, hands the spec to an executor (the
//! Assembler + code invocation live behind that closure), and feeds the
//! resulting report back. The paper's Analyzer logic — "Python code that
//! is run after job completion" — is the executor's job here, expressed
//! as arbitrary Rust code returning a [`LaunchReport`].

use crate::launchpad::{LaunchPad, LaunchReport, ReportOutcome};
use mp_docstore::Result;
use serde_json::Value;

/// Statistics from a rocket drain loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RocketStats {
    /// Jobs claimed and executed.
    pub launched: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs re-queued for re-run.
    pub reruns: usize,
    /// Detours created.
    pub detours: usize,
    /// Jobs fizzled.
    pub fizzled: usize,
}

/// Claim and execute fireworks until the queue (as filtered by `query`)
/// is empty or `max_jobs` have been launched. The executor receives the
/// full engine document and returns the report.
pub fn rapidfire(
    pad: &LaunchPad,
    worker: &str,
    query: &Value,
    max_jobs: usize,
    mut executor: impl FnMut(&Value) -> LaunchReport,
) -> Result<RocketStats> {
    let mut stats = RocketStats::default();
    while stats.launched < max_jobs {
        let Some(doc) = pad.claim_next(query, worker)? else {
            break;
        };
        stats.launched += 1;
        let fw_id = doc["_id"].as_str().expect("engine _id").to_string();
        let report = executor(&doc);
        match pad.report(&fw_id, report)? {
            ReportOutcome::Completed => stats.completed += 1,
            ReportOutcome::Requeued(_) => stats.reruns += 1,
            ReportOutcome::Detoured(_) => stats.detours += 1,
            ReportOutcome::Fizzled => stats.fizzled += 1,
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firework::{Firework, Stage, Workflow};
    use mp_docstore::Database;
    use serde_json::json;

    fn pad_with_jobs(n: usize) -> LaunchPad {
        let pad = LaunchPad::new(Database::new()).unwrap();
        let fws: Vec<Firework> = (0..n)
            .map(|i| Firework::new(format!("fw{i}"), "job", Stage(json!({"i": i}))))
            .collect();
        pad.add_workflow(&Workflow::new("wf", fws).unwrap())
            .unwrap();
        pad
    }

    #[test]
    fn drains_queue() {
        let pad = pad_with_jobs(5);
        let stats = rapidfire(&pad, "w0", &json!({}), 100, |_doc| LaunchReport::Success {
            task_doc: json!({"output": {}}),
        })
        .unwrap();
        assert_eq!(stats.launched, 5);
        assert_eq!(stats.completed, 5);
        assert_eq!(pad.database().collection("tasks").len(), 5);
    }

    #[test]
    fn respects_max_jobs() {
        let pad = pad_with_jobs(5);
        let stats = rapidfire(&pad, "w0", &json!({}), 2, |_doc| LaunchReport::Success {
            task_doc: json!({"output": {}}),
        })
        .unwrap();
        assert_eq!(stats.launched, 2);
    }

    #[test]
    fn retry_loop_converges() {
        // Executor fails each job once (walltime), then succeeds: every
        // job should complete with exactly one rerun.
        let pad = pad_with_jobs(3);
        let stats = rapidfire(&pad, "w0", &json!({}), 100, |doc| {
            if doc["launches"] == json!(1) {
                LaunchReport::Rerun {
                    spec_updates: json!({"$set": {"walltime": 7200}}),
                    reason: "killed".into(),
                }
            } else {
                LaunchReport::Success {
                    task_doc: json!({"output": {}}),
                }
            }
        })
        .unwrap();
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.reruns, 3);
        assert_eq!(stats.launched, 6);
    }

    #[test]
    fn multiple_workers_share_queue() {
        let pad = pad_with_jobs(10);
        let mut total = 0;
        for w in 0..3 {
            let stats = rapidfire(&pad, &format!("w{w}"), &json!({}), 4, |_| {
                LaunchReport::Success {
                    task_doc: json!({"output": {}}),
                }
            })
            .unwrap();
            total += stats.completed;
        }
        assert_eq!(total, 10);
    }
}
