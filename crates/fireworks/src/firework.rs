//! Firework definitions: Stage, Binder, Fuse, and workflow DAGs.
//!
//! §III-C2: "A *Firework* represents one step in a workflow ... Each job
//! is specified as a dictionary of runtime parameters (*Stage*) that are
//! later translated into input files on a compute node by a component
//! called the *Assembler*. ... A *Fuse* object is embedded within each
//! Firework and is capable of overriding input parameters prior to
//! execution, based on the output state of any parent jobs. ...
//! Duplicate jobs are detected via *Binder* objects, which uniquely
//! identify a job."

use serde::{Deserialize, Serialize};
use serde_json::{json, Map, Value};

/// Lifecycle states of a firework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "SCREAMING_SNAKE_CASE")]
pub enum FwState {
    /// Parents incomplete, or Fuse condition unmet.
    Waiting,
    /// Eligible to be claimed by a worker.
    Ready,
    /// Claimed and executing.
    Running,
    /// Finished successfully.
    Completed,
    /// Failed beyond automated repair (manual intervention queue).
    Fizzled,
    /// Deliberately disabled (e.g. abort cascades, user pause).
    Defused,
    /// Replaced by a pointer to an identical earlier run (dedup) or by a
    /// detour replacement.
    Archived,
}

impl FwState {
    /// Stable string form used in datastore documents.
    pub fn as_str(self) -> &'static str {
        match self {
            FwState::Waiting => "WAITING",
            FwState::Ready => "READY",
            FwState::Running => "RUNNING",
            FwState::Completed => "COMPLETED",
            FwState::Fizzled => "FIZZLED",
            FwState::Defused => "DEFUSED",
            FwState::Archived => "ARCHIVED",
        }
    }

    /// Parse from the string form.
    pub fn parse(s: &str) -> Option<FwState> {
        Some(match s {
            "WAITING" => FwState::Waiting,
            "READY" => FwState::Ready,
            "RUNNING" => FwState::Running,
            "COMPLETED" => FwState::Completed,
            "FIZZLED" => FwState::Fizzled,
            "DEFUSED" => FwState::Defused,
            "ARCHIVED" => FwState::Archived,
            _ => return None,
        })
    }
}

/// The job-parameter dictionary (the paper's *Stage*): an arbitrary JSON
/// object the Assembler later turns into input files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage(pub Value);

impl Stage {
    /// An empty stage.
    pub fn empty() -> Self {
        Stage(json!({}))
    }

    /// Apply Mongo-update-style overrides (`$set`/`$unset`/`$inc`/...),
    /// exactly the mechanism the paper gives Fuses.
    pub fn apply_overrides(&mut self, overrides: &Value) -> Result<(), String> {
        let u = mp_docstore::Update::parse(overrides).map_err(|e| e.to_string())?;
        u.apply(&mut self.0, 0.0, false).map_err(|e| e.to_string())
    }
}

/// Uniqueness key for duplicate detection (the paper's *Binder*): "a
/// reference to a crystal structure ID and the type of functional".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Binder {
    /// Canonical identity string, e.g. `"<structure fingerprint>|GGA"`.
    pub key: String,
}

impl Binder {
    /// Binder from a structure identity and a calculation flavour.
    pub fn new(structure_id: impl Into<String>, functional: &str) -> Self {
        Binder {
            key: format!("{}|{}", structure_id.into(), functional),
        }
    }
}

/// Fuse condition: when may this firework become READY?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case", tag = "type")]
pub enum FuseCondition {
    /// All parents COMPLETED (the default).
    ParentsCompleted,
    /// Parents completed AND a field of the merged parent outputs
    /// matches a Mongo-style filter.
    ParentOutputMatches {
        /// Filter applied to the merged parent-output document.
        filter: Value,
    },
    /// Parents completed AND a human has approved the workflow.
    UserApproved,
}

/// The Fuse: delayed-execution condition plus parameter overrides taken
/// from parent outputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fuse {
    /// Release condition.
    pub condition: FuseCondition,
    /// Mongo-update-style dict applied to the Stage when the fuse
    /// releases (recorded in the database for later analysis, per the
    /// paper).
    pub overrides: Option<Value>,
}

impl Default for Fuse {
    fn default() -> Self {
        Fuse {
            condition: FuseCondition::ParentsCompleted,
            overrides: None,
        }
    }
}

/// One workflow step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Firework {
    /// Unique id within the launchpad.
    pub fw_id: String,
    /// Job parameters.
    pub stage: Stage,
    /// Duplicate-detection identity; `None` disables dedup for this step.
    pub binder: Option<Binder>,
    /// Release condition + overrides.
    pub fuse: Fuse,
    /// Parent fw_ids (dependencies).
    pub parents: Vec<String>,
    /// Times this firework has been launched (re-runs increment it).
    pub launches: u32,
    /// Human-readable name.
    pub name: String,
}

impl Firework {
    /// A firework with no parents and default fuse.
    pub fn new(fw_id: impl Into<String>, name: impl Into<String>, stage: Stage) -> Self {
        Firework {
            fw_id: fw_id.into(),
            stage,
            binder: None,
            fuse: Fuse::default(),
            parents: Vec::new(),
            launches: 0,
            name: name.into(),
        }
    }

    /// Builder: set the binder.
    pub fn with_binder(mut self, binder: Binder) -> Self {
        self.binder = Some(binder);
        self
    }

    /// Builder: add a parent dependency.
    pub fn after(mut self, parent: &str) -> Self {
        self.parents.push(parent.to_string());
        self
    }

    /// Builder: set the fuse.
    pub fn with_fuse(mut self, fuse: Fuse) -> Self {
        self.fuse = fuse;
        self
    }
}

/// A DAG of fireworks submitted as a unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workflow {
    /// Workflow id.
    pub wf_id: String,
    /// Member fireworks.
    pub fireworks: Vec<Firework>,
    /// Human-readable name.
    pub name: String,
}

impl Workflow {
    /// Single-firework workflow.
    pub fn single(wf_id: impl Into<String>, fw: Firework) -> Self {
        let wf_id = wf_id.into();
        Workflow {
            name: format!("wf-{wf_id}"),
            wf_id,
            fireworks: vec![fw],
        }
    }

    /// Build from fireworks; validates the DAG.
    pub fn new(wf_id: impl Into<String>, fireworks: Vec<Firework>) -> Result<Self, String> {
        let wf = Workflow {
            wf_id: wf_id.into(),
            name: String::new(),
            fireworks,
        };
        wf.validate()?;
        Ok(wf)
    }

    /// Check ids are unique, parents exist, and the graph is acyclic.
    pub fn validate(&self) -> Result<(), String> {
        let ids: Vec<&str> = self.fireworks.iter().map(|f| f.fw_id.as_str()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != ids.len() {
            return Err("duplicate fw_id in workflow".into());
        }
        for f in &self.fireworks {
            for p in &f.parents {
                if !ids.contains(&p.as_str()) {
                    return Err(format!("fw {} references unknown parent {p}", f.fw_id));
                }
            }
        }
        // Kahn's algorithm for cycle detection.
        let mut indegree: Map<String, Value> = Map::new();
        for f in &self.fireworks {
            indegree.insert(f.fw_id.clone(), json!(f.parents.len()));
        }
        let mut ready: Vec<&str> = self
            .fireworks
            .iter()
            .filter(|f| f.parents.is_empty())
            .map(|f| f.fw_id.as_str())
            .collect();
        let mut seen = 0;
        while let Some(id) = ready.pop() {
            seen += 1;
            for f in &self.fireworks {
                if f.parents.iter().any(|p| p == id) {
                    let d = indegree[&f.fw_id].as_u64().expect("counted") - 1;
                    indegree.insert(f.fw_id.clone(), json!(d));
                    if d == 0 {
                        ready.push(&f.fw_id);
                    }
                }
            }
        }
        if seen != self.fireworks.len() {
            return Err("workflow graph has a cycle".into());
        }
        Ok(())
    }

    /// Children of a firework.
    pub fn children_of(&self, fw_id: &str) -> Vec<&Firework> {
        self.fireworks
            .iter()
            .filter(|f| f.parents.iter().any(|p| p == fw_id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_string_roundtrip() {
        for s in [
            FwState::Waiting,
            FwState::Ready,
            FwState::Running,
            FwState::Completed,
            FwState::Fizzled,
            FwState::Defused,
            FwState::Archived,
        ] {
            assert_eq!(FwState::parse(s.as_str()), Some(s));
        }
        assert_eq!(FwState::parse("NOPE"), None);
    }

    #[test]
    fn stage_overrides_use_mongo_syntax() {
        let mut s = Stage(json!({"incar": {"encut": 400, "nelm": 60}}));
        s.apply_overrides(&json!({"$set": {"incar.encut": 520}, "$unset": {"incar.nelm": ""}}))
            .unwrap();
        assert_eq!(s.0, json!({"incar": {"encut": 520}}));
    }

    #[test]
    fn binder_key_format() {
        let b = Binder::new("fp-abc", "GGA");
        assert_eq!(b.key, "fp-abc|GGA");
    }

    #[test]
    fn workflow_validation_catches_unknown_parent() {
        let a = Firework::new("a", "a", Stage::empty());
        let b = Firework::new("b", "b", Stage::empty()).after("zzz");
        assert!(Workflow::new("wf", vec![a, b]).is_err());
    }

    #[test]
    fn workflow_validation_catches_duplicate_ids() {
        let a = Firework::new("a", "a", Stage::empty());
        let a2 = Firework::new("a", "a2", Stage::empty());
        assert!(Workflow::new("wf", vec![a, a2]).is_err());
    }

    #[test]
    fn workflow_validation_catches_cycles() {
        let a = Firework::new("a", "a", Stage::empty()).after("b");
        let b = Firework::new("b", "b", Stage::empty()).after("a");
        assert!(Workflow::new("wf", vec![a, b]).is_err());
    }

    #[test]
    fn valid_dag_passes() {
        let a = Firework::new("a", "a", Stage::empty());
        let b = Firework::new("b", "b", Stage::empty()).after("a");
        let c = Firework::new("c", "c", Stage::empty())
            .after("a")
            .after("b");
        let wf = Workflow::new("wf", vec![a, b, c]).unwrap();
        assert_eq!(wf.children_of("a").len(), 2);
        assert_eq!(wf.children_of("c").len(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let fw = Firework::new("a", "relax", Stage(json!({"x": 1})))
            .with_binder(Binder::new("fp", "GGA"))
            .with_fuse(Fuse {
                condition: FuseCondition::ParentOutputMatches {
                    filter: json!({"output.converged": true}),
                },
                overrides: Some(json!({"$set": {"x": 2}})),
            });
        let s = serde_json::to_string(&fw).unwrap();
        let back: Firework = serde_json::from_str(&s).unwrap();
        assert_eq!(back, fw);
    }
}
